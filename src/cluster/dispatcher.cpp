#include "cluster/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <stdexcept>
#include <utility>

#include "streaming/engine.h"
#include "util/check.h"

namespace decompeval::cluster {

namespace {

service::Json error_response(const std::string& message) {
  service::Json r = service::Json::object();
  r.set("status", service::Json::string("error"));
  r.set("error", service::Json::string(message));
  return r;
}

void echo_op(service::Json& response, const service::Json& request) {
  if (!request.is_object()) return;
  const service::Json* op = request.get("op");
  if (op != nullptr && op->type() == service::Json::Type::kString)
    response.set("op", service::Json::string(op->as_string()));
}

}  // namespace

Dispatcher::Dispatcher(DispatcherOptions options)
    : options_(std::move(options)),
      faults_(options_.fault_plan),
      ring_(options_.virtual_nodes),
      // A fault plan disables the response fast lane: a cached answer
      // would skip "cluster.backend"/"cluster.forward" hits and shift
      // their deterministic sequences.
      line_cache_(options_.fault_plan.empty()
                      ? options_.response_cache_capacity
                      : 0) {
  DE_EXPECTS_MSG(!options_.backends.empty(),
                 "Dispatcher needs at least one backend");
  for (const BackendEndpoint& endpoint : options_.backends) {
    DE_EXPECTS_MSG(!endpoint.id.empty(), "backend id must be non-empty");
    DE_EXPECTS_MSG(by_id_.count(endpoint.id) == 0,
                   "duplicate backend id '" + endpoint.id + "'");
    by_id_.emplace(endpoint.id, backends_.size());
    auto state = std::make_unique<BackendState>();
    state->endpoint = endpoint;
    state->retry_tokens = options_.retry_budget_initial;
    if (options_.breaker_latency_window > 0)
      state->latency_window.assign(options_.breaker_latency_window, 0.0);
    backends_.push_back(std::move(state));
    ring_.add(endpoint.id);
  }
}

std::uint64_t Dispatcher::clock_ms() const {
  if (options_.now_ms) return options_.now_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Dispatcher::~Dispatcher() { stop(); }

void Dispatcher::start() {
  if (running_.exchange(true)) return;
  if (options_.health_interval_ms > 0)
    prober_thread_ = std::thread([this] { prober_loop(); });
}

void Dispatcher::stop() {
  running_.store(false);
  if (prober_thread_.joinable()) prober_thread_.join();
  for (const auto& backend : backends_) {
    const std::lock_guard<std::mutex> lock(backend->pool_mutex);
    backend->idle.clear();
  }
}

bool Dispatcher::backend_up(const std::string& id) const {
  const auto it = by_id_.find(id);
  return it != by_id_.end() && backends_[it->second]->up.load();
}

DispatcherStats Dispatcher::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::unique_ptr<service::ServiceClient> Dispatcher::acquire(
    BackendState& backend, int connect_attempts) {
  {
    const std::lock_guard<std::mutex> lock(backend.pool_mutex);
    if (!backend.idle.empty()) {
      auto conn = std::move(backend.idle.back());
      backend.idle.pop_back();
      return conn;
    }
  }
  auto conn = std::make_unique<service::ServiceClient>();
  // Timeout set before connect so it bounds the handshake too: a
  // partitioned backend that accepts SYNs but never answers must cost at
  // most one forward_timeout, not an unbounded blocking connect(2).
  conn->set_timeout_ms(options_.forward_timeout_ms);
  if (!backend.endpoint.socket_path.empty())
    conn->connect(backend.endpoint.socket_path, connect_attempts);
  else
    conn->connect_tcp(backend.endpoint.host, backend.endpoint.port,
                      connect_attempts);
  return conn;
}

void Dispatcher::release(BackendState& backend,
                         std::unique_ptr<service::ServiceClient> conn) {
  const std::lock_guard<std::mutex> lock(backend.pool_mutex);
  if (backend.idle.size() < options_.pool_capacity)
    backend.idle.push_back(std::move(conn));
  // else: drop it; the destructor closes the socket.
}

Dispatcher::Admit Dispatcher::admit_for_attempt(BackendState& backend,
                                                bool is_retry) {
  const std::lock_guard<std::mutex> lock(backend.robust_mutex);
  if (backend.breaker == BackendState::Breaker::kOpen) {
    if (clock_ms() - backend.breaker_opened_ms < options_.breaker_cooldown_ms)
      return Admit::kBreakerOpen;
    // Cooldown elapsed: half-open. Exactly one probe request is admitted
    // until it reports back.
    backend.breaker = BackendState::Breaker::kHalfOpen;
    backend.half_open_probe_in_flight = false;
  }
  if (backend.breaker == BackendState::Breaker::kHalfOpen &&
      backend.half_open_probe_in_flight)
    return Admit::kBreakerOpen;
  if (is_retry && options_.retry_budget_ratio > 0.0) {
    if (backend.retry_tokens < 1.0) return Admit::kBudgetSpent;
    backend.retry_tokens -= 1.0;
  }
  if (backend.breaker == BackendState::Breaker::kHalfOpen)
    backend.half_open_probe_in_flight = true;
  return Admit::kOk;
}

void Dispatcher::clear_probe_slot(BackendState& backend) {
  const std::lock_guard<std::mutex> lock(backend.robust_mutex);
  backend.half_open_probe_in_flight = false;
}

void Dispatcher::note_success(BackendState& backend, double latency_ms) {
  {
    const std::lock_guard<std::mutex> lock(backend.robust_mutex);
    backend.half_open_probe_in_flight = false;
    backend.breaker = BackendState::Breaker::kClosed;
    backend.consecutive_failures = 0;
    backend.transport_failures = 0;
    if (options_.retry_budget_ratio > 0.0)
      backend.retry_tokens =
          std::min(options_.retry_budget_cap,
                   backend.retry_tokens + options_.retry_budget_ratio);
    if (!backend.latency_window.empty()) {
      backend.latency_window[backend.latency_next] = latency_ms;
      backend.latency_next =
          (backend.latency_next + 1) % backend.latency_window.size();
      ++backend.latency_count;
    }
  }
  maybe_eject_slow_peer(backend);
}

void Dispatcher::note_failure(BackendState& backend, bool overload) {
  (void)overload;  // both kinds count identically toward the breaker
  if (options_.breaker_failure_threshold <= 0) {
    clear_probe_slot(backend);
    return;
  }
  bool opened = false;
  {
    const std::lock_guard<std::mutex> lock(backend.robust_mutex);
    backend.half_open_probe_in_flight = false;
    if (backend.breaker == BackendState::Breaker::kHalfOpen) {
      // The single probe failed: straight back to open, cooldown restarts.
      backend.breaker = BackendState::Breaker::kOpen;
      backend.breaker_opened_ms = clock_ms();
      opened = true;
    } else if (backend.breaker == BackendState::Breaker::kClosed &&
               ++backend.consecutive_failures >=
                   options_.breaker_failure_threshold) {
      backend.breaker = BackendState::Breaker::kOpen;
      backend.breaker_opened_ms = clock_ms();
      backend.consecutive_failures = 0;
      opened = true;
    }
  }
  if (opened) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.breaker_opens;
  }
}

void Dispatcher::note_transport_failure(BackendState& backend) {
  bool mark_down = true;
  if (options_.down_after_failures > 1) {
    const std::lock_guard<std::mutex> lock(backend.robust_mutex);
    mark_down =
        ++backend.transport_failures >= options_.down_after_failures;
    if (mark_down) backend.transport_failures = 0;
  }
  if (mark_down) backend.up.store(false);
}

void Dispatcher::maybe_eject_slow_peer(BackendState& backend) {
  if (options_.breaker_latency_window == 0 ||
      options_.breaker_failure_threshold <= 0 || backends_.size() < 2)
    return;
  // Copy the windows out one lock at a time; the math runs lock-free.
  const auto window_samples = [this](BackendState& b,
                                     std::vector<double>& out) {
    const std::lock_guard<std::mutex> lock(b.robust_mutex);
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(b.latency_count, b.latency_window.size()));
    out.assign(b.latency_window.begin(),
               b.latency_window.begin() + static_cast<std::ptrdiff_t>(n));
  };
  const auto percentile = [](std::vector<double>& v, double p) {
    std::sort(v.begin(), v.end());
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(i, v.size() - 1)];
  };
  std::vector<double> self;
  window_samples(backend, self);
  if (self.size() < options_.breaker_min_latency_samples) return;
  const double self_p95 = percentile(self, 0.95);
  std::vector<double> peer_medians;
  std::vector<double> scratch;
  for (const auto& other : backends_) {
    if (other.get() == &backend) continue;
    window_samples(*other, scratch);
    if (scratch.size() < options_.breaker_min_latency_samples) continue;
    peer_medians.push_back(percentile(scratch, 0.5));
  }
  if (peer_medians.empty()) return;
  const double peer_median = percentile(peer_medians, 0.5);
  // The 0.1 ms floor keeps sub-millisecond local peers from flagging
  // every microsecond of jitter as an outlier.
  if (self_p95 <=
      options_.breaker_latency_outlier_factor * std::max(peer_median, 0.1))
    return;
  bool ejected = false;
  {
    const std::lock_guard<std::mutex> lock(backend.robust_mutex);
    if (backend.breaker == BackendState::Breaker::kClosed) {
      backend.breaker = BackendState::Breaker::kOpen;
      backend.breaker_opened_ms = clock_ms();
      backend.consecutive_failures = 0;
      ejected = true;
    }
  }
  if (ejected) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.breaker_opens;
    ++stats_.slow_peer_ejections;
  }
}

double Dispatcher::hedge_delay_for(BackendState& backend) const {
  double delay = options_.hedge_delay_ms;
  if (options_.breaker_latency_window == 0) return delay;
  const std::lock_guard<std::mutex> lock(backend.robust_mutex);
  const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
      backend.latency_count, backend.latency_window.size()));
  if (n < options_.breaker_min_latency_samples) return delay;
  std::vector<double> v(backend.latency_window.begin(),
                        backend.latency_window.begin() +
                            static_cast<std::ptrdiff_t>(n));
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      options_.hedge_quantile * static_cast<double>(n - 1) + 0.5);
  // Quantile-adaptive, but never hedge sooner than the configured floor:
  // a warmed-up fast backend would otherwise hedge every request.
  return std::max(delay, v[std::min(i, n - 1)]);
}

bool Dispatcher::hedgeable(const service::Json& request) const {
  // Hedges are reads with cacheable (side-effect-free, deterministic)
  // answers; anything else could double-execute work. A dispatcher-level
  // fault plan disables hedging outright — a hedge would consume
  // "cluster.*" hits in a timing-dependent order.
  if (options_.hedge_delay_ms <= 0.0 || !options_.fault_plan.empty())
    return false;
  if (backends_.size() < 2 || !request.is_object()) return false;
  const service::Json* op = request.get("op");
  if (op == nullptr || op->type() != service::Json::Type::kString)
    return false;
  const auto& name = op->as_string();
  if (name != "run_study" && name != "run_replication" && name != "annotate")
    return false;
  return !request.get_bool("no_cache", false);
}

Dispatcher::AttemptResult Dispatcher::attempt_backend(
    BackendState& backend, const service::Json& request,
    service::Json& response, HedgeContext* hedge) {
  const std::uint64_t attempt_start = clock_ms();
  std::unique_ptr<service::ServiceClient> conn;
  try {
    conn = acquire(backend, /*connect_attempts=*/10);
    if (hedge != nullptr) {
      const std::lock_guard<std::mutex> lock(*hedge->mutex);
      if (hedge->cancelled->load(std::memory_order_relaxed)) {
        clear_probe_slot(backend);
        release(backend, std::move(conn));
        return AttemptResult::kCancelled;
      }
      *hedge->conn_slot = conn.get();
    }
    faults_.raise_next("cluster.forward");
    service::Json reply = conn->call(request);
    if (hedge != nullptr) {
      const std::lock_guard<std::mutex> lock(*hedge->mutex);
      *hedge->conn_slot = nullptr;
      if (hedge->cancelled->load(std::memory_order_relaxed)) {
        // The winner was decided between our call returning and this
        // lock: our socket may already be half-closed, so the connection
        // is dropped (never pooled) and the reply discarded unrecorded.
        clear_probe_slot(backend);
        return AttemptResult::kCancelled;
      }
    }
    if (reply.get_string("status", "") == "overloaded") {
      // The backend is alive, just saturated: keep it up, put the
      // connection back, and spill to the next ring node. Saturation
      // still counts toward the breaker — a persistently overloaded
      // backend should stop receiving attempts for a cooldown.
      release(backend, std::move(conn));
      note_failure(backend, /*overload=*/true);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.overloaded_retries;
      return AttemptResult::kOverloaded;
    }
    release(backend, std::move(conn));
    note_success(backend,
                 static_cast<double>(clock_ms() - attempt_start));
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.forwarded;
    }
    response = std::move(reply);
    return AttemptResult::kResponse;
  } catch (const std::exception&) {
    // Transport failure (connect/send/recv error, timeout) or injected
    // forward fault: the connection may be mid-reply, so it is dropped.
    if (hedge != nullptr) {
      bool cancelled;
      {
        const std::lock_guard<std::mutex> lock(*hedge->mutex);
        *hedge->conn_slot = nullptr;
        cancelled = hedge->cancelled->load(std::memory_order_relaxed);
      }
      if (cancelled) {
        // The other side won and shut this connection down; that is a
        // cancel, not a backend failure — no down-marking, no breaker
        // penalty, no failover counted.
        clear_probe_slot(backend);
        return AttemptResult::kCancelled;
      }
    }
    note_failure(backend, /*overload=*/false);
    note_transport_failure(backend);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.failovers;
    return AttemptResult::kFailed;
  }
}

service::Json Dispatcher::handle(const service::Json& request,
                                 const std::atomic<bool>* cancel) {
  if (request.is_object() &&
      request.get_string("op", "") == "cluster_stats") {
    const DispatcherStats s = stats();
    service::Json r = service::Json::object();
    r.set("status", service::Json::string("ok"));
    r.set("forwarded", service::Json::number(static_cast<double>(s.forwarded)));
    r.set("failovers", service::Json::number(static_cast<double>(s.failovers)));
    r.set("overloaded_retries",
          service::Json::number(static_cast<double>(s.overloaded_retries)));
    r.set("down_skips",
          service::Json::number(static_cast<double>(s.down_skips)));
    r.set("exhausted", service::Json::number(static_cast<double>(s.exhausted)));
    r.set("response_cache_hits",
          service::Json::number(static_cast<double>(s.response_cache_hits)));
    r.set("replication_factor",
          service::Json::number(
              static_cast<double>(options_.replication_factor)));
    r.set("replicated",
          service::Json::number(static_cast<double>(s.replicated)));
    r.set("replication_failures",
          service::Json::number(static_cast<double>(s.replication_failures)));
    r.set("deadline_refusals",
          service::Json::number(static_cast<double>(s.deadline_refusals)));
    r.set("retries_suppressed",
          service::Json::number(static_cast<double>(s.retries_suppressed)));
    r.set("breaker_skips",
          service::Json::number(static_cast<double>(s.breaker_skips)));
    r.set("breaker_opens",
          service::Json::number(static_cast<double>(s.breaker_opens)));
    r.set("slow_peer_ejections",
          service::Json::number(static_cast<double>(s.slow_peer_ejections)));
    r.set("hedges", service::Json::number(static_cast<double>(s.hedges)));
    r.set("hedge_wins",
          service::Json::number(static_cast<double>(s.hedge_wins)));
    service::Json nodes = service::Json::array();
    for (const auto& backend : backends_) {
      service::Json node = service::Json::object();
      node.set("id", service::Json::string(backend->endpoint.id));
      node.set("up", service::Json::boolean(backend->up.load()));
      {
        const std::lock_guard<std::mutex> state_lock(backend->robust_mutex);
        const char* breaker = "closed";
        if (backend->breaker == BackendState::Breaker::kOpen)
          breaker = "open";
        else if (backend->breaker == BackendState::Breaker::kHalfOpen)
          breaker = "half_open";
        node.set("breaker", service::Json::string(breaker));
        node.set("retry_tokens",
                 service::Json::number(backend->retry_tokens));
      }
      node.set("last_probe_ms",
               service::Json::number(static_cast<double>(
                   backend->last_probe_ms.load(std::memory_order_relaxed))));
      nodes.push_back(node);
    }
    r.set("backends", nodes);
    echo_op(r, request);
    return r;
  }
  service::Json response = forward(request, cancel);
  return response;
}

bool Dispatcher::line_cacheable(const service::Json& request) const {
  if (line_cache_.capacity() == 0 || !request.is_object()) return false;
  const service::Json* op = request.get("op");
  if (op == nullptr || op->type() != service::Json::Type::kString)
    return false;
  const auto& name = op->as_string();
  if (name != "run_study" && name != "run_replication" && name != "annotate")
    return false;
  return !request.get_bool("no_cache", false);
}

bool Dispatcher::replicable(const service::Json& request) const {
  if (options_.replication_factor < 2 || !request.is_object()) return false;
  const service::Json* op = request.get("op");
  if (op == nullptr || op->type() != service::Json::Type::kString)
    return false;
  const auto& name = op->as_string();
  if (name != "run_study" && name != "run_replication" && name != "annotate")
    return false;
  return !request.get_bool("no_cache", false);
}

bool Dispatcher::stream_replicable(const service::Json& request) const {
  if (options_.replication_factor < 2 || !request.is_object()) return false;
  return streaming::StreamEngine::is_stream_write(
      request.get_string("op", ""));
}

void Dispatcher::replicate_stream(const service::Json& request,
                                  const service::Json& response,
                                  const std::vector<std::size_t>& walk,
                                  std::size_t served_index) {
  // Forward the *command* so each replica's StreamEngine re-executes it
  // against its own session. A relative "count" absorb is pinned to the
  // primary's absolute answer first ("emitted"), so a replica that fell
  // behind (or raced ahead via an earlier failover) converges on the same
  // arrival prefix instead of drifting by a relative amount.
  service::Json outbound = service::strip_volatile_fields(request);
  if (request.get_string("op", "") == "stream_absorb") {
    service::Json absolute = service::Json::object();
    for (const auto& [key, value] : outbound.members()) {
      const std::string_view k(key.data(), key.size());
      if (k == "count" || k == "upto") continue;
      absolute.set(k, value);
    }
    absolute.set("upto", service::Json::number(
                             response.get_number("emitted", 0.0)));
    outbound = std::move(absolute);
  }
  const std::size_t r = std::min(options_.replication_factor, walk.size());
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t backend_index = walk[i];
    if (backend_index == served_index) continue;
    BackendState& backend = *backends_[backend_index];
    if (!backend.up.load()) {
      // Same stance as result replication: the primary's journal still
      // covers the write, and a restarted replica re-warms from replay.
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.replication_failures;
      continue;
    }
    try {
      auto conn = acquire(backend, /*connect_attempts=*/10);
      const service::Json reply = conn->call(outbound);
      release(backend, std::move(conn));
      // "degraded" is still an applied write: the replica absorbed what
      // its fault plan let through and stays on the shared seq schedule.
      const std::string status = reply.get_string("status", "");
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      if (status == "ok" || status == "degraded")
        ++stats_.replicated;
      else
        ++stats_.replication_failures;
    } catch (const std::exception&) {
      backend.up.store(false);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.replication_failures;
    }
  }
}

void Dispatcher::replicate(const service::Json& request,
                           const service::Json& response,
                           const std::vector<std::size_t>& walk,
                           std::size_t served_index) {
  // The walk is replicas_for(key, R) extended with the failover tail, so
  // the write set is its first R entries. The durable command form
  // (volatile fields stripped) ships with the response: replicas journal
  // nothing for installs — the disk write IS the durability — but they
  // need the canonical key for the cache envelope.
  service::Json install = service::Json::object();
  install.set("op", service::Json::string("cache_install"));
  install.set("request", service::strip_volatile_fields(request));
  install.set("response", response);
  const std::size_t r = std::min(options_.replication_factor, walk.size());
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t backend_index = walk[i];
    if (backend_index == served_index) continue;
    BackendState& backend = *backends_[backend_index];
    if (!backend.up.load()) {
      // Down replicas are not an error: the journal on the serving
      // backend (and its disk cache) still covers the result, and the
      // restarted replica re-warms from there. Hedge-free by design.
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.replication_failures;
      continue;
    }
    try {
      auto conn = acquire(backend, /*connect_attempts=*/10);
      const service::Json reply = conn->call(install);
      release(backend, std::move(conn));
      const bool stored = reply.get_string("status", "") == "ok" &&
                          reply.get_bool("stored", false);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      if (stored)
        ++stats_.replicated;
      else
        ++stats_.replication_failures;
    } catch (const std::exception&) {
      backend.up.store(false);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.replication_failures;
    }
  }
}

bool Dispatcher::try_serve_cached_line(const service::Json& request,
                                       std::string& out) {
  if (!line_cacheable(request)) return false;
  thread_local std::string key;
  key.clear();
  service::canonical_request_key(request, key);
  const std::lock_guard<std::mutex> lock(line_mutex_);
  const std::string_view* hit = line_cache_.find(key);
  if (hit == nullptr) return false;
  out.append(hit->data(), hit->size());
  {
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.response_cache_hits;
  }
  return true;
}

void Dispatcher::handle_line(const service::Json& request,
                             const std::atomic<bool>* cancel,
                             std::string& out) {
  if ((cancel == nullptr || !cancel->load(std::memory_order_relaxed)) &&
      try_serve_cached_line(request, out))
    return;
  const service::Json response = handle(request, cancel);
  const std::size_t start = out.size();
  response.dump_to(out);
  if (line_cacheable(request) && response.get_string("status", "") == "ok")
    store_line(request,
               std::string_view(out.data() + start, out.size() - start));
}

void Dispatcher::maybe_store_response(const service::Json& request,
                                      const service::Json& response) {
  if (!line_cacheable(request) || response.get_string("status", "") != "ok")
    return;
  // One extra render per cold cacheable request — trivial next to the
  // forwarding round-trip it lets every warm repeat skip. Json::dump is
  // deterministic, so the stored line is byte-identical to what the
  // server sends for this response.
  thread_local std::string line;
  line.clear();
  response.dump_to(line);
  store_line(request, line);
}

void Dispatcher::store_line(const service::Json& request,
                            std::string_view line) {
  thread_local std::string key;
  key.clear();
  service::canonical_request_key(request, key);
  const std::lock_guard<std::mutex> lock(line_mutex_);
  line_cache_.put(key, line_arena_.intern(line));
  maybe_compact_lines();
}

void Dispatcher::maybe_compact_lines() {
  // Same dead-byte compaction as the other rendered-line caches.
  if (line_arena_.live_bytes() < (256u << 10)) return;
  std::size_t live = 0;
  line_cache_.for_each(
      [&live](const std::string&, const std::string_view& v) {
        live += v.size();
      });
  if (line_arena_.live_bytes() < live * 2 + (64u << 10)) return;
  std::vector<std::pair<std::string, std::string>> survivors;
  survivors.reserve(line_cache_.size());
  line_cache_.for_each(
      [&survivors](const std::string& k, const std::string_view& v) {
        survivors.emplace_back(k, std::string(v));
      });
  line_cache_.clear();
  line_arena_.reset();
  for (auto it = survivors.rbegin(); it != survivors.rend(); ++it)
    line_cache_.put(it->first, line_arena_.intern(it->second));
}

service::Json Dispatcher::forward(const service::Json& request,
                                  const std::atomic<bool>* cancel) {
  // Routing scratch is thread-local: forward() runs on every server
  // worker concurrently, and the warm path should not allocate.
  thread_local std::string key;
  thread_local std::vector<std::size_t> candidates;
  thread_local std::vector<char> seen;
  thread_local std::vector<char> attempted;
  key.clear();
  // Routing (not caching) uses the baseline-aware key, so incremental
  // annotate requests follow their document's original placement.
  service::routing_key(request, key);
  // Ring indices equal backends_ indices: the constructor add()s ids to
  // the ring in backends_ insertion order.
  ring_.route_into(key, backends_.size(), candidates, seen);
  attempted.assign(backends_.size(), 0);

  const std::uint64_t dispatch_start = clock_ms();
  const double requested_deadline =
      request.is_object() ? request.get_number("deadline_ms", 0.0) : 0.0;
  // Deep copy made only when a deadline must shrink; everything else
  // forwards the caller's object untouched.
  service::Json decremented;
  const bool may_hedge = hedgeable(request);

  std::size_t tried = 0;
  for (std::size_t walk = 0; walk < candidates.size(); ++walk) {
    const std::size_t backend_index = candidates[walk];
    if (attempted[backend_index]) continue;  // consumed as a hedge target
    if (cancel != nullptr && cancel->load()) {
      service::Json r = service::Json::object();
      r.set("status", service::Json::string("deadline_exceeded"));
      r.set("error",
            service::Json::string("request cancelled while dispatching"));
      echo_op(r, request);
      return r;
    }
    // Deadline propagation: the backend gets what is left of the caller's
    // budget, not the original figure — and when what is left is not
    // worth a forward, the refusal happens here, before a connection or a
    // backend slot is burned.
    const service::Json* outbound = &request;
    if (requested_deadline > 0.0) {
      const double elapsed =
          static_cast<double>(clock_ms() - dispatch_start);
      const double remaining = requested_deadline - elapsed;
      if (remaining <= std::max(options_.deadline_floor_ms, 0.0)) {
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.deadline_refusals;
        }
        service::Json r = service::Json::object();
        r.set("status", service::Json::string("deadline_exceeded"));
        r.set("error", service::Json::string(
                           "deadline budget exhausted while dispatching"));
        echo_op(r, request);
        return r;
      }
      decremented = request;
      decremented.set("deadline_ms", service::Json::number(remaining));
      outbound = &decremented;
    }
    BackendState& backend = *backends_[backend_index];
    // Injected outage: indistinguishable from a failed health check. The
    // prober restores the backend once its real ping succeeds.
    if (faults_.fire_next("cluster.backend")) backend.up.store(false);
    if (!backend.up.load()) {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.down_skips;
      continue;
    }
    switch (admit_for_attempt(backend, /*is_retry=*/tried >= 1)) {
      case Admit::kBreakerOpen: {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.breaker_skips;
        continue;
      }
      case Admit::kBudgetSpent: {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.retries_suppressed;
        continue;
      }
      case Admit::kOk:
        break;
    }
    ++tried;
    attempted[backend_index] = 1;

    // --- hedged attempt: primary on a thread, second replica fired after
    // the primary has been quiet for the hedge delay, first answer wins.
    // Only on the first (non-retry) attempt — later attempts ARE the
    // retry path already.
    if (may_hedge && tried == 1) {
      // Pick the hedge target now: the next live ring candidate. Its
      // admission happens here too (never spending retry tokens — a
      // hedge is latency cover, not a retry).
      std::size_t hedge_index = backends_.size();
      for (std::size_t j = walk + 1; j < candidates.size(); ++j) {
        BackendState& other = *backends_[candidates[j]];
        if (!other.up.load()) continue;
        if (admit_for_attempt(other, /*is_retry=*/false) != Admit::kOk)
          continue;
        hedge_index = candidates[j];
        break;
      }
      if (hedge_index < backends_.size()) {
        struct HedgeShared {
          std::mutex mutex;
          std::condition_variable cv;
          bool primary_done = false;
          bool secondary_done = false;
          AttemptResult primary_result = AttemptResult::kFailed;
          AttemptResult secondary_result = AttemptResult::kFailed;
          service::Json primary_response;
          service::Json secondary_response;
          service::ServiceClient* primary_conn = nullptr;
          service::ServiceClient* secondary_conn = nullptr;
          std::atomic<bool> cancel_primary{false};
          std::atomic<bool> cancel_secondary{false};
        } shared;
        BackendState& hedge_backend = *backends_[hedge_index];
        HedgeContext primary_ctx{&shared.mutex, &shared.primary_conn,
                                 &shared.cancel_primary};
        HedgeContext secondary_ctx{&shared.mutex, &shared.secondary_conn,
                                   &shared.cancel_secondary};
        std::thread primary([&] {
          service::Json resp;
          const AttemptResult r =
              attempt_backend(backend, *outbound, resp, &primary_ctx);
          const std::lock_guard<std::mutex> lock(shared.mutex);
          shared.primary_result = r;
          shared.primary_response = std::move(resp);
          shared.primary_done = true;
          shared.cv.notify_all();
        });
        std::thread secondary;
        bool launched_secondary = false;
        {
          std::unique_lock<std::mutex> lock(shared.mutex);
          const double delay = hedge_delay_for(backend);
          shared.cv.wait_for(
              lock,
              std::chrono::microseconds(
                  static_cast<std::int64_t>(delay * 1000.0)),
              [&] { return shared.primary_done; });
          if (!shared.primary_done) {
            launched_secondary = true;
            secondary = std::thread([&] {
              service::Json resp;
              const AttemptResult r = attempt_backend(
                  hedge_backend, *outbound, resp, &secondary_ctx);
              const std::lock_guard<std::mutex> inner(shared.mutex);
              shared.secondary_result = r;
              shared.secondary_response = std::move(resp);
              shared.secondary_done = true;
              shared.cv.notify_all();
            });
            attempted[hedge_index] = 1;
            {
              const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
              ++stats_.hedges;
            }
          }
          // Wait for a winner (any kResponse) or for both sides to end.
          shared.cv.wait(lock, [&] {
            const bool secondary_settled =
                !launched_secondary || shared.secondary_done;
            if (shared.primary_done &&
                shared.primary_result == AttemptResult::kResponse)
              return true;
            if (launched_secondary && shared.secondary_done &&
                shared.secondary_result == AttemptResult::kResponse)
              return true;
            return shared.primary_done && secondary_settled;
          });
          // Decide and cancel the loser while still holding the mutex,
          // so the loser either sees its cancel flag before publishing a
          // connection or we see the published connection to shut down.
          const bool primary_won =
              shared.primary_done &&
              shared.primary_result == AttemptResult::kResponse;
          const bool secondary_won =
              !primary_won && launched_secondary && shared.secondary_done &&
              shared.secondary_result == AttemptResult::kResponse;
          if (primary_won && launched_secondary && !shared.secondary_done) {
            shared.cancel_secondary.store(true, std::memory_order_relaxed);
            if (shared.secondary_conn != nullptr)
              shared.secondary_conn->shutdown_now();
          }
          if (secondary_won && !shared.primary_done) {
            shared.cancel_primary.store(true, std::memory_order_relaxed);
            if (shared.primary_conn != nullptr)
              shared.primary_conn->shutdown_now();
          }
        }
        // Both joins are prompt: the winner's thread already finished and
        // the loser's blocked read was broken by shutdown_now above.
        primary.join();
        if (secondary.joinable()) secondary.join();
        if (!launched_secondary) clear_probe_slot(hedge_backend);

        service::Json* winner = nullptr;
        std::size_t winner_index = backend_index;
        if (shared.primary_result == AttemptResult::kResponse) {
          winner = &shared.primary_response;
        } else if (launched_secondary &&
                   shared.secondary_result == AttemptResult::kResponse) {
          winner = &shared.secondary_response;
          winner_index = hedge_index;
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.hedge_wins;
        }
        if (winner != nullptr) {
          if (winner->get_string("status", "") == "ok" &&
              replicable(request))
            replicate(request, *winner, candidates, winner_index);
          return std::move(*winner);
        }
        // Both sides overloaded/failed: per-attempt stats were recorded
        // inside attempt_backend; keep walking the ring past both.
        if (launched_secondary) ++tried;
        continue;
      }
      // No admissible hedge target: fall through to the inline attempt.
    }

    service::Json response;
    switch (attempt_backend(backend, *outbound, response, nullptr)) {
      case AttemptResult::kResponse: {
        const std::string status = response.get_string("status", "");
        if (status == "ok" && replicable(request))
          replicate(request, response, candidates, backend_index);
        else if ((status == "ok" || status == "degraded") &&
                 stream_replicable(request))
          replicate_stream(request, response, candidates, backend_index);
        return response;  // verbatim — bit-identical to a direct call
      }
      case AttemptResult::kOverloaded:
      case AttemptResult::kFailed:
      case AttemptResult::kCancelled:  // unreachable without a hedge ctx
        continue;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.exhausted;
  }
  service::Json r =
      error_response("no backend available (" + std::to_string(tried) + " of " +
                     std::to_string(candidates.size()) + " candidates tried)");
  r.set("attempted", service::Json::number(static_cast<double>(tried)));
  echo_op(r, request);
  return r;
}

void Dispatcher::prober_loop() {
  const auto tick = std::chrono::milliseconds(options_.health_interval_ms);
  while (running_.load()) {
    std::this_thread::sleep_for(tick);
    for (const auto& backend : backends_) {
      if (!running_.load()) return;
      if (backend->up.load()) continue;
      backend->last_probe_ms.store(clock_ms(), std::memory_order_relaxed);
      try {
        service::ServiceClient probe;
        // Set before connect: the probe must cost at most probe_timeout_ms
        // even against a partitioned peer that accepts but never answers.
        probe.set_timeout_ms(options_.probe_timeout_ms);
        if (!backend->endpoint.socket_path.empty())
          probe.connect(backend->endpoint.socket_path, /*attempts=*/1);
        else
          probe.connect_tcp(backend->endpoint.host, backend->endpoint.port,
                            /*attempts=*/1);
        service::Json ping = service::Json::object();
        ping.set("op", service::Json::string("ping"));
        if (probe.call(ping).get_string("status", "") == "ok") {
          {
            const std::lock_guard<std::mutex> lock(backend->robust_mutex);
            backend->transport_failures = 0;
          }
          backend->up.store(true);
        }
      } catch (const std::exception&) {
        // Still down; try again next tick.
      }
    }
  }
}

}  // namespace decompeval::cluster
