#include "cluster/disk_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cluster/hash_ring.h"

namespace decompeval::cluster {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

constexpr std::size_t kMaxWarnings = 16;

// Temp files from a writer that crashed between open and rename are
// litter; anything this old cannot belong to an in-flight store.
constexpr std::uint64_t kStaleTempMs = 60'000;

// mkdir -p: orchestrators hand each backend a nested directory
// (<root>/backend-N) whose parent may not exist yet.
void make_directories(const std::string& path) {
  for (std::size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    ::mkdir(path.substr(0, pos).c_str(), 0755);  // EEXIST is fine
  }
}

std::uint64_t file_size_of(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

DiskCache::DiskCache(DiskCacheOptions options)
    : options_(std::move(options)), memory_(options_.memory_capacity) {
  if (!options_.directory.empty()) {
    make_directories(options_.directory);
    stats_.bytes = scan_directory_bytes();
  }
}

std::uint64_t DiskCache::scan_directory_bytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".json") continue;
    total += static_cast<std::uint64_t>(entry.file_size(ec));
  }
  return total;
}

std::string DiskCache::canonical_request_key(const service::Json& request) {
  // Shared with the dispatcher's routing and every rendered-line cache;
  // the format (and therefore every stored digest) is unchanged.
  return service::canonical_request_key(request);
}

std::string DiskCache::digest(const service::Json& request) const {
  return hex64(HashRing::hash(canonical_request_key(request) +
                              "|version=" + options_.version));
}

std::string DiskCache::path_for(const std::string& digest) const {
  return options_.directory + "/" + digest + ".json";
}

void DiskCache::warn(std::string message) {
  // Callers hold mutex_.
  if (warnings_.size() >= kMaxWarnings)
    warnings_.erase(warnings_.begin());
  warnings_.push_back(std::move(message));
}

bool DiskCache::load(const std::string& digest, service::Json* response) {
  if (!enabled()) return false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const service::Json* hit = memory_.find(digest)) {
      ++stats_.memory_hits;
      *response = *hit;
      return true;
    }
  }
  try {
    if (options_.faults != nullptr) options_.faults->raise_next("cache.read");
    std::ifstream in(path_for(digest));
    if (!in.is_open()) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return false;
    }
    std::ostringstream content;
    content << in.rdbuf();

    const service::Json envelope = service::Json::parse(content.str());
    const service::Json* stored = envelope.get("response");
    const std::string version = envelope.get_string("cache_version", "");
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stored == nullptr || !stored->is_object() ||
        version != options_.version) {
      warn("cache file " + digest + ".json rejected: " +
           (stored == nullptr || !stored->is_object()
                ? "missing response object"
                : "version '" + version + "' != '" + options_.version + "'"));
      ++stats_.invalid_files;
      ++stats_.misses;
      return false;
    }
    ++stats_.disk_hits;
    // Touch the entry so the janitor's mtime order is LRU, not FIFO.
    // Best-effort: a failed touch only makes the file look older.
    ::utimensat(AT_FDCWD, path_for(digest).c_str(), nullptr, 0);
    memory_.put(digest, *stored);
    *response = *stored;
    return true;
  } catch (const util::FaultError& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    warn(std::string("cache read abandoned: ") + e.what());
    ++stats_.misses;
    return false;
  } catch (const std::exception& e) {
    // Torn, truncated, or non-JSON file: a miss, never a crash.
    const std::lock_guard<std::mutex> lock(mutex_);
    warn("cache file " + digest + ".json unreadable: " + e.what());
    ++stats_.invalid_files;
    ++stats_.misses;
    return false;
  }
}

bool DiskCache::store(const std::string& digest,
                      const service::Json& response,
                      std::string_view canonical_key) {
  if (!enabled()) return false;
  // Only clean results are reusable artifacts; degraded/error responses
  // describe one particular (possibly faulted) run.
  if (response.get_string("status", "") != "ok") return false;

  service::Json envelope = service::Json::object();
  envelope.set("cache_version", service::Json::string(options_.version));
  envelope.set("digest", service::Json::string(digest));
  if (!canonical_key.empty())
    envelope.set("key", service::Json::string(canonical_key));
  envelope.set("response", response);
  const std::string bytes = envelope.dump() + "\n";

  // Replacing an existing entry frees its bytes at rename time; count
  // that in the growth check so a same-size overwrite always fits.
  const std::uint64_t replaced = file_size_of(path_for(digest));
  std::string temp_path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (options_.max_bytes > 0 &&
        stats_.bytes - std::min(stats_.bytes, replaced) + bytes.size() >
            options_.max_bytes) {
      ++stats_.growth_refusals;
      ++stats_.store_failures;
      warn("cache store refused: entry of " + std::to_string(bytes.size()) +
           " bytes would grow the cache past max_bytes=" +
           std::to_string(options_.max_bytes) + " (currently " +
           std::to_string(stats_.bytes) + " bytes; run cache_gc)");
      return false;
    }
    temp_path = options_.directory + "/." + digest + ".tmp." +
                std::to_string(::getpid()) + "." +
                std::to_string(temp_counter_++);
  }
  try {
    {
      std::ofstream out(temp_path, std::ios::trunc);
      if (!out.is_open())
        throw std::runtime_error("cannot open temp file " + temp_path);
      out << bytes;
      out.flush();
      if (!out.good())
        throw std::runtime_error("short write to " + temp_path);
    }
    // The injected write fault fires after the temp write and before the
    // rename — the worst possible crash point — to prove no partial file
    // can ever land at the final path.
    if (options_.faults != nullptr) options_.faults->raise_next("cache.write");
    if (std::rename(temp_path.c_str(), path_for(digest).c_str()) != 0)
      throw std::runtime_error("rename into " + path_for(digest) + " failed");
  } catch (const std::exception& e) {
    std::remove(temp_path.c_str());
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.store_failures;
    warn(std::string("cache store aborted: ") + e.what());
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  stats_.bytes = stats_.bytes - std::min(stats_.bytes, replaced) +
                 bytes.size();
  memory_.put(digest, response);
  return true;
}

CacheGcReport DiskCache::gc(const CacheGcOptions& bounds) {
  CacheGcReport report;
  if (!enabled()) return report;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.gc_runs;

  struct Entry {
    std::string path;
    std::uint64_t bytes = 0;
    std::int64_t mtime_ms = 0;
    std::string key;   ///< canonical key from the envelope ("" = unknown)
    bool immune = false;
  };
  std::vector<Entry> entries;
  const auto now_ms = [] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  };
  const std::int64_t now = now_ms();

  std::error_code ec;
  for (const auto& dirent :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const std::string path = dirent.path().string();
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) continue;
    const std::int64_t mtime_ms =
        static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000 +
        st.st_mtim.tv_nsec / 1'000'000;
    if (dirent.path().extension() != ".json") {
      // Writer litter: a temp file this stale belongs to no live store.
      if (now - mtime_ms > static_cast<std::int64_t>(kStaleTempMs) &&
          std::remove(path.c_str()) == 0)
        ++report.temp_files_deleted;
      continue;
    }
    Entry entry;
    entry.path = path;
    entry.bytes = static_cast<std::uint64_t>(st.st_size);
    entry.mtime_ms = mtime_ms;
    try {
      std::ifstream in(path);
      std::ostringstream content;
      content << in.rdbuf();
      entry.key =
          service::Json::parse(content.str()).get_string("key", "");
    } catch (const std::exception&) {
      // Unparseable: prime deletion candidate, never immune.
    }
    entries.push_back(std::move(entry));
  }
  report.files_scanned = entries.size();
  for (const Entry& entry : entries) report.bytes_before += entry.bytes;

  // Oldest first; path breaks mtime ties so the pass is deterministic.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime_ms != b.mtime_ms ? a.mtime_ms < b.mtime_ms
                                    : a.path < b.path;
  });
  // The newest file of each logical key is immune to the *size* pass:
  // LRU eviction never takes the only (or freshest) copy of a live entry.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->key.empty()) continue;
    bool newest = true;
    for (auto later = entries.rbegin(); later != it; ++later)
      if (later->key == it->key) {
        newest = false;
        break;
      }
    if (newest) {
      it->immune = true;
      ++report.newest_kept;
    }
  }

  std::uint64_t remaining = report.bytes_before;
  const auto drop = [&](Entry& entry) {
    if (std::remove(entry.path.c_str()) != 0) {
      warn("cache_gc could not delete " + entry.path);
      return;
    }
    ++report.files_deleted;
    ++stats_.gc_deleted_files;
    stats_.gc_deleted_bytes += entry.bytes;
    remaining -= entry.bytes;
    entry.bytes = 0;  // marks it gone for the size pass
  };
  // Age pass: an explicit TTL overrides immunity — an entry nobody used
  // for max_age is dead weight even as the newest of its key. Without
  // this, a full cache of distinct keys could never free space.
  if (bounds.max_age_ms > 0)
    for (Entry& entry : entries)
      if (entry.bytes > 0 &&
          now - entry.mtime_ms >
              static_cast<std::int64_t>(bounds.max_age_ms))
        drop(entry);
  // Size pass: least-recently-used first until the directory fits.
  if (bounds.max_bytes > 0)
    for (Entry& entry : entries) {
      if (remaining <= bounds.max_bytes) break;
      if (!entry.immune && entry.bytes > 0) drop(entry);
    }

  stats_.bytes = remaining;
  report.bytes_after = remaining;
  return report;
}

DiskCacheStats DiskCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::string> DiskCache::warnings() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return warnings_;
}

}  // namespace decompeval::cluster
