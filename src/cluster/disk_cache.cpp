#include "cluster/disk_cache.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cluster/hash_ring.h"

namespace decompeval::cluster {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

constexpr std::size_t kMaxWarnings = 16;

// mkdir -p: orchestrators hand each backend a nested directory
// (<root>/backend-N) whose parent may not exist yet.
void make_directories(const std::string& path) {
  for (std::size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    ::mkdir(path.substr(0, pos).c_str(), 0755);  // EEXIST is fine
  }
}

}  // namespace

DiskCache::DiskCache(DiskCacheOptions options)
    : options_(std::move(options)), memory_(options_.memory_capacity) {
  if (!options_.directory.empty()) make_directories(options_.directory);
}

std::string DiskCache::canonical_request_key(const service::Json& request) {
  // Shared with the dispatcher's routing and every rendered-line cache;
  // the format (and therefore every stored digest) is unchanged.
  return service::canonical_request_key(request);
}

std::string DiskCache::digest(const service::Json& request) const {
  return hex64(HashRing::hash(canonical_request_key(request) +
                              "|version=" + options_.version));
}

std::string DiskCache::path_for(const std::string& digest) const {
  return options_.directory + "/" + digest + ".json";
}

void DiskCache::warn(std::string message) {
  // Callers hold mutex_.
  if (warnings_.size() >= kMaxWarnings)
    warnings_.erase(warnings_.begin());
  warnings_.push_back(std::move(message));
}

bool DiskCache::load(const std::string& digest, service::Json* response) {
  if (!enabled()) return false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const service::Json* hit = memory_.find(digest)) {
      ++stats_.memory_hits;
      *response = *hit;
      return true;
    }
  }
  try {
    if (options_.faults != nullptr) options_.faults->raise_next("cache.read");
    std::ifstream in(path_for(digest));
    if (!in.is_open()) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return false;
    }
    std::ostringstream content;
    content << in.rdbuf();

    const service::Json envelope = service::Json::parse(content.str());
    const service::Json* stored = envelope.get("response");
    const std::string version = envelope.get_string("cache_version", "");
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stored == nullptr || !stored->is_object() ||
        version != options_.version) {
      warn("cache file " + digest + ".json rejected: " +
           (stored == nullptr || !stored->is_object()
                ? "missing response object"
                : "version '" + version + "' != '" + options_.version + "'"));
      ++stats_.invalid_files;
      ++stats_.misses;
      return false;
    }
    ++stats_.disk_hits;
    memory_.put(digest, *stored);
    *response = *stored;
    return true;
  } catch (const util::FaultError& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    warn(std::string("cache read abandoned: ") + e.what());
    ++stats_.misses;
    return false;
  } catch (const std::exception& e) {
    // Torn, truncated, or non-JSON file: a miss, never a crash.
    const std::lock_guard<std::mutex> lock(mutex_);
    warn("cache file " + digest + ".json unreadable: " + e.what());
    ++stats_.invalid_files;
    ++stats_.misses;
    return false;
  }
}

bool DiskCache::store(const std::string& digest,
                      const service::Json& response) {
  if (!enabled()) return false;
  // Only clean results are reusable artifacts; degraded/error responses
  // describe one particular (possibly faulted) run.
  if (response.get_string("status", "") != "ok") return false;

  service::Json envelope = service::Json::object();
  envelope.set("cache_version", service::Json::string(options_.version));
  envelope.set("digest", service::Json::string(digest));
  envelope.set("response", response);
  const std::string bytes = envelope.dump() + "\n";

  std::string temp_path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    temp_path = options_.directory + "/." + digest + ".tmp." +
                std::to_string(::getpid()) + "." +
                std::to_string(temp_counter_++);
  }
  try {
    {
      std::ofstream out(temp_path, std::ios::trunc);
      if (!out.is_open())
        throw std::runtime_error("cannot open temp file " + temp_path);
      out << bytes;
      out.flush();
      if (!out.good())
        throw std::runtime_error("short write to " + temp_path);
    }
    // The injected write fault fires after the temp write and before the
    // rename — the worst possible crash point — to prove no partial file
    // can ever land at the final path.
    if (options_.faults != nullptr) options_.faults->raise_next("cache.write");
    if (std::rename(temp_path.c_str(), path_for(digest).c_str()) != 0)
      throw std::runtime_error("rename into " + path_for(digest) + " failed");
  } catch (const std::exception& e) {
    std::remove(temp_path.c_str());
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.store_failures;
    warn(std::string("cache store aborted: ") + e.what());
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.stores;
  memory_.put(digest, response);
  return true;
}

DiskCacheStats DiskCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::string> DiskCache::warnings() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return warnings_;
}

}  // namespace decompeval::cluster
