// Persistent, digest-keyed result cache for cluster backends.
//
// Key derivation: the canonical request key is the request's members
// sorted by name with volatile fields removed ("threads" — results are
// bit-identical at every thread count; "no_cache"; "deadline_ms").
// The digest is FNV-1a over that key plus the binary version string, so
// a new binary version can never serve a stale file: the old entry's
// digest simply no longer matches and the old file is left untouched.
// Each cache file also records the version, digest, and canonical key it
// was written under — the key is what lets the janitor group files into
// versions of one logical entry.
//
// Crash atomicity: entries are written to a unique temp name in the same
// directory and rename(2)d into place, so readers only ever see absent
// or complete files — never a torn write. Concurrent writers of the same
// digest each rename their own temp file; the last rename wins and the
// result is a valid file either way.
//
// Degraded responses are NEVER stored: a degraded result is an answer
// about one faulted run, not a reusable artifact (store() refuses them).
//
// Growth bound: with max_bytes set, a store that would push the cache
// past the bound is *refused* — counted (growth_refusals) and logged as
// a structured warning, with no temp file ever written — instead of
// silently growing. Byte totals are tracked from a construction-time
// scan plus per-store deltas and exposed via stats().bytes; they are
// approximate under concurrent multi-process writers and re-exact after
// every gc().
//
// Janitor (gc): size/age-bounded collection over the cache directory.
// Disk hits touch the file's mtime, so mtime order is true LRU order,
// and gc deletes least-recently-used files first until the directory
// fits the byte budget. The size pass never deletes the newest version
// of a logical key (grouped by the recorded canonical key) — a
// size-bounded cache stays a *complete* cache for every live key; its
// floor is the sum of newest-version files, and absolute growth is the
// store guard's job. The age pass is an explicit TTL and overrides that
// immunity: an entry unused for max_age is deleted outright, which is
// how an operator frees space in a cache full of live keys. Unparseable
// files enjoy no protection from either pass, and stale temp files from
// crashed writers are swept too.
//
// A small in-memory LRU fronts the disk so a hot digest costs no IO.
// Corrupted or truncated files are a miss plus a structured warning
// (readable via warnings()), never a crash.
//
// Fault sites (deterministic, serial-counter): "cache.read" — the load
// is abandoned and counted as a miss; "cache.write" — the store aborts
// cleanly, the temp file is removed, and no partial file remains.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "service/json.h"
#include "util/fault.h"
#include "util/lru.h"

namespace decompeval::cluster {

struct DiskCacheOptions {
  /// Cache directory; created on construction. Empty disables the cache
  /// (every load misses, every store is a no-op).
  std::string directory;
  /// Binary version folded into every digest (use core::version()).
  std::string version;
  /// In-memory LRU front capacity (entries; 0 keeps disk-only behavior).
  std::size_t memory_capacity = 64;
  /// Refuse-to-grow bound on the directory's total bytes (0 = unbounded).
  /// Stores that would exceed it fail with a structured warning; run gc()
  /// (the "cache_gc" op) to make room.
  std::uint64_t max_bytes = 0;
  /// Optional injector for the "cache.read" / "cache.write" sites
  /// (non-const: these are serial-counter sites).
  util::FaultInjector* faults = nullptr;
};

struct DiskCacheStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;   ///< IO errors and injected write faults
  std::uint64_t invalid_files = 0;    ///< corrupt/truncated/mismatched files
  std::uint64_t growth_refusals = 0;  ///< stores refused by max_bytes
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_deleted_files = 0;
  std::uint64_t gc_deleted_bytes = 0;
  std::uint64_t bytes = 0;            ///< tracked directory total
};

/// Bounds for one gc() pass; 0 disables that bound.
struct CacheGcOptions {
  /// Shrink (LRU-first, newest-of-key immune) until under this.
  std::uint64_t max_bytes = 0;
  /// TTL: delete entries not used for this long (overrides immunity).
  std::uint64_t max_age_ms = 0;
};

struct CacheGcReport {
  std::uint64_t files_scanned = 0;
  std::uint64_t files_deleted = 0;
  std::uint64_t temp_files_deleted = 0;  ///< stale writer litter swept
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  std::uint64_t newest_kept = 0;  ///< files immune as newest of their key
};

class DiskCache {
 public:
  explicit DiskCache(DiskCacheOptions options);

  /// Canonical cache/routing key of a request (see file comment). Pure
  /// function of the request; shared with the dispatcher so the cache key
  /// and the ring placement always agree.
  static std::string canonical_request_key(const service::Json& request);

  /// Digest for a request under this cache's version string.
  std::string digest(const service::Json& request) const;

  /// Fills `response` and returns true on a hit. A corrupt, truncated,
  /// or version/key-mismatched file is a miss (plus a warning); so is an
  /// injected "cache.read" fault. Disk hits touch the file's mtime so
  /// gc()'s LRU order tracks use, not just write time.
  bool load(const std::string& digest, service::Json* response);

  /// Writes the entry (temp + rename). `canonical_key` (when given) is
  /// recorded in the envelope for the janitor's per-key grouping.
  /// Returns false — storing nothing, leaving no partial file — when the
  /// cache is disabled, the response is not status "ok", the entry would
  /// exceed max_bytes, IO fails, or "cache.write" fires.
  bool store(const std::string& digest, const service::Json& response,
             std::string_view canonical_key = {});

  /// Runs one janitor pass (see file comment). Holds the cache lock for
  /// the duration; byte totals are exact afterwards.
  CacheGcReport gc(const CacheGcOptions& bounds);

  bool enabled() const { return !options_.directory.empty(); }
  const std::string& directory() const { return options_.directory; }
  std::uint64_t max_bytes() const { return options_.max_bytes; }
  std::string path_for(const std::string& digest) const;

  DiskCacheStats stats() const;
  /// Most recent structured warnings (bounded; oldest dropped first).
  std::vector<std::string> warnings() const;

 private:
  void warn(std::string message);
  std::uint64_t scan_directory_bytes() const;

  DiskCacheOptions options_;
  mutable std::mutex mutex_;
  util::LruCache<std::string, service::Json> memory_;
  DiskCacheStats stats_;
  std::vector<std::string> warnings_;
  std::uint64_t temp_counter_ = 0;
};

}  // namespace decompeval::cluster
