// Persistent, digest-keyed result cache for cluster backends.
//
// Key derivation: the canonical request key is the request's members
// sorted by name with volatile fields removed ("threads" — results are
// bit-identical at every thread count; "no_cache"; "deadline_ms").
// The digest is FNV-1a over that key plus the binary version string, so
// a new binary version can never serve a stale file: the old entry's
// digest simply no longer matches and the old file is left untouched.
// Each cache file also records the version and key it was written under
// (defense in depth — a file is served only when both still match).
//
// Crash atomicity: entries are written to a unique temp name in the same
// directory and rename(2)d into place, so readers only ever see absent
// or complete files — never a torn write. Concurrent writers of the same
// digest each rename their own temp file; the last rename wins and the
// result is a valid file either way.
//
// Degraded responses are NEVER stored: a degraded result is an answer
// about one faulted run, not a reusable artifact (store() refuses them).
//
// A small in-memory LRU fronts the disk so a hot digest costs no IO.
// Corrupted or truncated files are a miss plus a structured warning
// (readable via warnings()), never a crash.
//
// Fault sites (deterministic, serial-counter): "cache.read" — the load
// is abandoned and counted as a miss; "cache.write" — the store aborts
// cleanly, the temp file is removed, and no partial file remains.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/json.h"
#include "util/fault.h"
#include "util/lru.h"

namespace decompeval::cluster {

struct DiskCacheOptions {
  /// Cache directory; created on construction. Empty disables the cache
  /// (every load misses, every store is a no-op).
  std::string directory;
  /// Binary version folded into every digest (use core::version()).
  std::string version;
  /// In-memory LRU front capacity (entries; 0 keeps disk-only behavior).
  std::size_t memory_capacity = 64;
  /// Optional injector for the "cache.read" / "cache.write" sites
  /// (non-const: these are serial-counter sites).
  util::FaultInjector* faults = nullptr;
};

struct DiskCacheStats {
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;  ///< IO errors and injected write faults
  std::uint64_t invalid_files = 0;   ///< corrupt/truncated/mismatched files
};

class DiskCache {
 public:
  explicit DiskCache(DiskCacheOptions options);

  /// Canonical cache/routing key of a request (see file comment). Pure
  /// function of the request; shared with the dispatcher so the cache key
  /// and the ring placement always agree.
  static std::string canonical_request_key(const service::Json& request);

  /// Digest for a request under this cache's version string.
  std::string digest(const service::Json& request) const;

  /// Fills `response` and returns true on a hit. A corrupt, truncated,
  /// or version/key-mismatched file is a miss (plus a warning); so is an
  /// injected "cache.read" fault.
  bool load(const std::string& digest, service::Json* response);

  /// Writes the entry (temp + rename). Returns false — storing nothing,
  /// leaving no partial file — when the cache is disabled, the response
  /// is not status "ok", IO fails, or "cache.write" fires.
  bool store(const std::string& digest, const service::Json& response);

  bool enabled() const { return !options_.directory.empty(); }
  const std::string& directory() const { return options_.directory; }
  std::string path_for(const std::string& digest) const;

  DiskCacheStats stats() const;
  /// Most recent structured warnings (bounded; oldest dropped first).
  std::vector<std::string> warnings() const;

 private:
  void warn(std::string message);

  DiskCacheOptions options_;
  mutable std::mutex mutex_;
  util::LruCache<std::string, service::Json> memory_;
  DiskCacheStats stats_;
  std::vector<std::string> warnings_;
  std::uint64_t temp_counter_ = 0;
};

}  // namespace decompeval::cluster
