#include "cluster/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "service/server.h"
#include "util/check.h"

namespace decompeval::cluster {

namespace {

// Static pid registry for the abnormal-exit signal handler. Slots are
// plain atomics so the handler (async-signal context) only does loads
// and kill(2) — both async-signal-safe. 0 means empty.
constexpr std::size_t kMaxSupervised = 128;
std::atomic<pid_t> g_supervised[kMaxSupervised];
std::atomic<bool> g_cleanup_installed{false};

void register_pid(pid_t pid) {
  for (auto& slot : g_supervised) {
    pid_t expected = 0;
    if (slot.compare_exchange_strong(expected, pid)) return;
  }
  // Registry full: the child is still reaped by stop(), it just loses
  // the abnormal-exit safety net.
}

void unregister_pid(pid_t pid) {
  for (auto& slot : g_supervised) {
    pid_t expected = pid;
    if (slot.compare_exchange_strong(expected, 0)) return;
  }
}

extern "C" void decompeval_supervisor_cleanup(int sig) {
  for (auto& slot : g_supervised) {
    const pid_t pid = slot.load(std::memory_order_relaxed);
    if (pid > 0) ::kill(pid, SIGKILL);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void Supervisor::install_signal_cleanup() {
  if (g_cleanup_installed.exchange(true)) return;
  struct sigaction action{};
  action.sa_handler = decompeval_supervisor_cleanup;
  ::sigemptyset(&action.sa_mask);
  for (const int sig : {SIGINT, SIGTERM, SIGHUP})
    ::sigaction(sig, &action, nullptr);
  // SIGCHLD stays at default (ignore): the watch thread owns reaping, so
  // the cleanup handler never races a signal-driven reaper.
  ::signal(SIGCHLD, SIG_DFL);
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)), faults_(options_.fault_plan) {
  DE_EXPECTS_MSG(!options_.backends.empty(),
                 "Supervisor needs at least one backend");
  for (const SupervisedBackend& spec : options_.backends) {
    DE_EXPECTS_MSG(!spec.id.empty(), "backend id must be non-empty");
    DE_EXPECTS_MSG(!spec.argv.empty(), "backend argv must be non-empty");
    BackendState state;
    state.spec = spec;
    backends_.push_back(std::move(state));
  }
}

Supervisor::~Supervisor() { stop(); }

std::size_t Supervisor::index_of(const std::string& id) const {
  for (std::size_t i = 0; i < backends_.size(); ++i)
    if (backends_[i].spec.id == id) return i;
  DE_EXPECTS_MSG(false, "unknown supervised backend '" + id + "'");
  return 0;
}

pid_t Supervisor::spawn(const SupervisedBackend& spec) {
  // argv must outlive execv in the child; the child sees the parent's
  // copy-on-write memory, so stack-local storage is fine.
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const std::string& arg : spec.argv)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; only async-signal-safe calls after fork
  }
  if (pid > 0) {
    register_pid(pid);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.spawns;
  }
  return pid;
}

void Supervisor::start() {
  if (running_.exchange(true)) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (BackendState& backend : backends_)
      if (backend.pid < 0) backend.pid = spawn(backend.spec);
  }
  last_ping_ = std::chrono::steady_clock::now();
  watch_thread_ = std::thread([this] { watch_loop(); });
}

bool Supervisor::ping(const std::string& socket_path,
                      double timeout_ms) const {
  try {
    service::ServiceClient probe;
    probe.connect(socket_path, /*attempts=*/1);
    probe.set_timeout_ms(timeout_ms);
    service::Json request = service::Json::object();
    request.set("op", service::Json::string("ping"));
    return probe.call(request).get_string("status", "") == "ok";
  } catch (const std::exception&) {
    return false;
  }
}

bool Supervisor::wait_until_serving(const std::string& id,
                                    std::uint64_t timeout_ms) {
  std::string socket_path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    socket_path = backends_[index_of(id)].spec.socket_path;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (ping(socket_path, options_.ping_timeout_ms)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

void Supervisor::rewarm(const SupervisedBackend& spec) {
  if (!spec.rewarm) return;
  try {
    service::ServiceClient client;
    client.connect(spec.socket_path, /*attempts=*/10);
    // Replay may recompute every in-flight command; give it room.
    client.set_timeout_ms(static_cast<double>(options_.serving_timeout_ms) +
                          30000.0);
    service::Json request = service::Json::object();
    request.set("op", service::Json::string("journal_replay"));
    const service::Json r = client.call(request);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.rewarm_replayed +=
        static_cast<std::uint64_t>(r.get_number("replayed", 0.0));
    stats_.rewarm_failures +=
        static_cast<std::uint64_t>(r.get_number("failures", 0.0));
    if (!r.get_bool("clean", true)) ++stats_.rewarm_failures;
  } catch (const std::exception&) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rewarm_failures;
  }
}

double Supervisor::backoff_ms(int consecutive_failures) const {
  double ms = options_.backoff_initial_ms;
  for (int i = 0; i < consecutive_failures && ms < options_.backoff_max_ms;
       ++i)
    ms *= 2.0;
  return std::min(ms, options_.backoff_max_ms);
}

void Supervisor::watch_loop() {
  while (running_.load()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
    const auto now = std::chrono::steady_clock::now();

    // Phase 1 (under the lock): reap exits, schedule restarts, and spawn
    // the ones that are due. Slow IO (pings, re-warm) happens later,
    // outside the lock.
    std::vector<SupervisedBackend> just_restarted;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (BackendState& backend : backends_) {
        if (backend.pid > 0) {
          int status = 0;
          const pid_t reaped = ::waitpid(backend.pid, &status, WNOHANG);
          if (reaped == backend.pid) {
            unregister_pid(backend.pid);
            backend.pid = -1;
            backend.ping_failures = 0;
            {
              const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
              ++stats_.exits_observed;
            }
            if (options_.max_restarts >= 0 &&
                backend.attempts >=
                    static_cast<std::uint64_t>(options_.max_restarts)) {
              backend.gave_up = true;
              const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
              ++stats_.gave_up;
            } else {
              backend.restart_pending = true;
              backend.next_restart =
                  now + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                backoff_ms(backend.consecutive_failures)));
            }
          }
        }
        if (backend.restart_pending && !backend.gave_up &&
            now >= backend.next_restart) {
          ++backend.attempts;
          if (faults_.fire_next("supervisor.restart")) {
            // Injected spawn failure: reschedule with doubled backoff.
            ++backend.consecutive_failures;
            backend.next_restart =
                now + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              backoff_ms(backend.consecutive_failures)));
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.restart_faults;
            continue;
          }
          backend.pid = spawn(backend.spec);
          backend.restart_pending = false;
          if (backend.pid < 0) ++backend.consecutive_failures;
        }
      }
      // Snapshot freshly spawned backends that still need their serving
      // check + re-warm (identified by attempts > restarts).
      for (BackendState& backend : backends_)
        if (backend.pid > 0 && backend.attempts > backend.restarts &&
            !backend.restart_pending)
          just_restarted.push_back(backend.spec);
    }

    // Phase 2 (no lock): serving checks and re-warm for fresh restarts.
    for (const SupervisedBackend& spec : just_restarted) {
      const bool serving =
          wait_until_serving(spec.id, options_.serving_timeout_ms);
      if (serving) rewarm(spec);
      const std::lock_guard<std::mutex> lock(mutex_);
      BackendState& backend = backends_[index_of(spec.id)];
      if (serving) {
        backend.restarts = backend.attempts;
        backend.consecutive_failures = 0;
        const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.restarts;
      } else {
        ++backend.consecutive_failures;
        {
          const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          ++stats_.restart_failures;
        }
        // Alive but not serving: put it out of its misery so the next
        // poll reaps it and re-enters the restart path. Mark this
        // attempt resolved so the serving check is not repeated.
        backend.restarts = backend.attempts;
        if (backend.pid > 0) ::kill(backend.pid, SIGKILL);
      }
      if (!running_.load()) return;
    }

    // Phase 3: liveness pings for wedged-but-alive backends.
    if (options_.ping_interval_ms > 0 &&
        now - last_ping_ >=
            std::chrono::milliseconds(options_.ping_interval_ms)) {
      last_ping_ = now;
      std::vector<std::pair<std::string, std::string>> to_ping;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const BackendState& backend : backends_)
          if (backend.pid > 0 && !backend.restart_pending)
            to_ping.emplace_back(backend.spec.id, backend.spec.socket_path);
      }
      for (const auto& [id, socket_path] : to_ping) {
        const bool ok = ping(socket_path, options_.ping_timeout_ms);
        const std::lock_guard<std::mutex> lock(mutex_);
        BackendState& backend = backends_[index_of(id)];
        if (ok) {
          backend.ping_failures = 0;
        } else if (++backend.ping_failures >=
                   options_.ping_failures_before_kill) {
          if (backend.pid > 0) {
            ::kill(backend.pid, SIGKILL);
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.hang_kills;
          }
          backend.ping_failures = 0;
        }
        if (!running_.load()) return;
      }
    }
  }
}

void Supervisor::kill_backend(const std::string& id, int sig) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const BackendState& backend = backends_[index_of(id)];
  if (backend.pid > 0) ::kill(backend.pid, sig);
}

bool Supervisor::alive(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const BackendState& backend = backends_[index_of(id)];
  return backend.pid > 0 && ::kill(backend.pid, 0) == 0;
}

pid_t Supervisor::pid_of(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return backends_[index_of(id)].pid;
}

std::uint64_t Supervisor::restarts_of(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return backends_[index_of(id)].restarts;
}

bool Supervisor::given_up(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return backends_[index_of(id)].gave_up;
}

SupervisorStats Supervisor::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Supervisor::stop() {
  if (!running_.exchange(false)) {
    // Never started or already stopped — but a constructed-then-dropped
    // supervisor may still own children from a start()/stop() race; the
    // loop below is idempotent either way.
  }
  if (watch_thread_.joinable()) watch_thread_.join();

  std::vector<std::pair<pid_t, std::string>> children;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (BackendState& backend : backends_) {
      if (backend.pid > 0)
        children.emplace_back(backend.pid, backend.spec.socket_path);
      backend.pid = -1;
      backend.restart_pending = false;
    }
  }
  // Polite first: the shutdown op lets a backend finish in-flight
  // responses and unlink its socket.
  for (const auto& [pid, socket_path] : children) {
    (void)pid;
    try {
      service::ServiceClient client;
      client.connect(socket_path, /*attempts=*/1);
      client.set_timeout_ms(500.0);
      service::Json request = service::Json::object();
      request.set("op", service::Json::string("shutdown"));
      client.call(request);
    } catch (const std::exception&) {
      // Dead or deaf; the signals below handle it.
    }
  }
  for (const auto& [pid, socket_path] : children) {
    (void)socket_path;
    const auto reap_within = [pid = pid](std::uint64_t ms) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(ms);
      while (std::chrono::steady_clock::now() < deadline) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return false;
    };
    bool reaped = reap_within(500);
    if (!reaped) {
      ::kill(pid, SIGTERM);
      reaped = reap_within(500);
    }
    if (!reaped) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);  // SIGKILL cannot be ignored
    }
    unregister_pid(pid);
  }
}

}  // namespace decompeval::cluster
