#include "cluster/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "cluster/hash_ring.h"

namespace decompeval::cluster {

namespace {

// Little-endian encoding keeps journal files byte-portable across hosts
// (and makes the fuzz test's golden offsets platform-independent).
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

constexpr std::size_t kHeaderBytes = 12;  // u32 length + u64 checksum

}  // namespace

Journal::Journal(JournalOptions options) : options_(std::move(options)) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (open_for_append()) {
    struct stat st{};
    if (::fstat(fd_, &st) == 0)
      stats_.bytes = static_cast<std::uint64_t>(st.st_size);
  }
}

Journal::~Journal() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (unsynced_ > 0) sync_locked();
    ::close(fd_);
    fd_ = -1;
  }
}

bool Journal::open_for_append() {
  if (fd_ >= 0) return true;
  fd_ = ::open(options_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  return fd_ >= 0;
}

bool Journal::write_record(int fd, std::string_view payload) {
  // One buffer, one write(2): an O_APPEND write from a single process is
  // the closest POSIX gets to an atomic record append, and replay treats
  // any torn tail as the crash artifact it is.
  std::string record;
  record.reserve(kHeaderBytes + payload.size());
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u64(record, HashRing::hash(payload));
  record.append(payload.data(), payload.size());
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void Journal::sync_locked() {
  if (fd_ >= 0 && ::fsync(fd_) == 0) ++stats_.fsyncs;
  unsynced_ = 0;
}

bool Journal::append(std::string_view payload) {
  if (!enabled() || payload.size() > kMaxRecordBytes) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (options_.faults != nullptr) {
    try {
      options_.faults->raise_next("journal.append");
    } catch (const util::FaultError&) {
      ++stats_.append_failures;
      return false;
    }
  }
  if (!open_for_append()) {
    ++stats_.append_failures;
    return false;
  }
  // Record the pre-append size so a short write can be truncated away —
  // the journal either gains one whole record or stays byte-identical.
  struct stat st{};
  const bool have_size = ::fstat(fd_, &st) == 0;
  if (!write_record(fd_, payload)) {
    if (have_size) {
      if (::ftruncate(fd_, st.st_size) != 0) {
        // Torn record left behind; replay will stop at it cleanly.
      }
    }
    ++stats_.append_failures;
    return false;
  }
  ++stats_.appends;
  stats_.bytes = (have_size ? static_cast<std::uint64_t>(st.st_size) : 0) +
                 kHeaderBytes + payload.size();
  if (++unsynced_ >= options_.fsync_every) sync_locked();
  return true;
}

void Journal::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (unsynced_ > 0) sync_locked();
}

ReplayedJournal Journal::replay(const std::string& path,
                                util::FaultInjector* faults) {
  ReplayedJournal out;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return out;  // no journal yet: empty, clean
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  std::size_t offset = 0;
  std::uint64_t index = 0;
  const auto stop = [&](const std::string& why) {
    out.clean = false;
    out.bytes_scanned = offset;
    out.warning = "journal replay stopped at record " + std::to_string(index) +
                  " (offset " + std::to_string(offset) + " of " +
                  std::to_string(bytes.size()) + "): " + why;
  };
  while (offset < bytes.size()) {
    if (faults != nullptr) {
      try {
        faults->raise_next("journal.replay");
      } catch (const util::FaultError& e) {
        stop(e.what());
        return out;
      }
    }
    if (bytes.size() - offset < kHeaderBytes) {
      stop("torn header (" + std::to_string(bytes.size() - offset) +
           " trailing bytes)");
      return out;
    }
    const std::uint32_t length = get_u32(bytes.data() + offset);
    const std::uint64_t checksum = get_u64(bytes.data() + offset + 4);
    if (length > kMaxRecordBytes) {
      stop("implausible record length " + std::to_string(length));
      return out;
    }
    if (bytes.size() - offset - kHeaderBytes < length) {
      stop("torn payload (record wants " + std::to_string(length) +
           " bytes, file has " +
           std::to_string(bytes.size() - offset - kHeaderBytes) + ")");
      return out;
    }
    const std::string_view payload(bytes.data() + offset + kHeaderBytes,
                                   length);
    if (HashRing::hash(payload) != checksum) {
      stop("checksum mismatch");
      return out;
    }
    out.records.emplace_back(payload);
    offset += kHeaderBytes + length;
    ++index;
  }
  out.bytes_scanned = offset;
  return out;
}

std::size_t Journal::compact(
    const std::function<bool(std::string_view)>& keep) {
  if (!enabled()) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (unsynced_ > 0) sync_locked();

  const ReplayedJournal current = replay(options_.path);
  std::vector<const std::string*> survivors;
  survivors.reserve(current.records.size());
  for (const std::string& record : current.records)
    if (keep(record)) survivors.push_back(&record);

  const std::string temp_path =
      options_.path + ".compact." + std::to_string(::getpid());
  const int temp_fd = ::open(temp_path.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (temp_fd < 0) return current.records.size();
  std::uint64_t new_bytes = 0;
  for (const std::string* record : survivors) {
    if (!write_record(temp_fd, *record)) {
      ::close(temp_fd);
      std::remove(temp_path.c_str());
      return current.records.size();
    }
    new_bytes += kHeaderBytes + record->size();
  }
  ::fsync(temp_fd);
  ::close(temp_fd);
  if (std::rename(temp_path.c_str(), options_.path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return current.records.size();
  }
  // The append fd still points at the old (now unlinked) inode; reopen so
  // future appends land in the compacted file.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  open_for_append();
  ++stats_.compactions;
  stats_.records_dropped += current.records.size() - survivors.size();
  stats_.bytes = new_bytes;
  return survivors.size();
}

JournalStats Journal::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace decompeval::cluster
