// A cluster backend: ServiceCore wrapped with the persistent disk cache.
//
// handle() is a drop-in ReplicationServer handler. Cacheable ops
// (run_study / run_replication) consult the disk cache first; clean "ok"
// responses are stored after computation. Because a disk hit replays the
// exact Json that handle() produced — and Json::dump is deterministic —
// a cached response is bit-identical to recomputing it, which is what
// the cold-restart identity test asserts. Degraded responses are never
// stored (DiskCache::store refuses them too).
//
// The "cache_stats" op returns ServiceCore's in-memory numbers augmented
// with disk_* fields (hits/misses/stores/failures/invalid files) and the
// cache's recent structured warnings.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "cluster/disk_cache.h"
#include "service/service.h"
#include "util/arena.h"
#include "util/lru.h"

namespace decompeval::cluster {

struct ClusterBackendOptions {
  service::ServiceOptions service;
  /// cache.directory empty → the backend runs with no disk cache.
  DiskCacheOptions cache;
  /// LRU bound on the rendered-line cache behind try_serve_cached_line
  /// (0 disables). Forced to 0 whenever a fault plan or cache fault
  /// injector is active, so chaos runs keep their exact hit sequences.
  std::size_t line_cache_capacity = 256;
};

class ClusterBackend {
 public:
  explicit ClusterBackend(ClusterBackendOptions options);

  /// Never throws (same contract as ServiceCore::handle).
  service::Json handle(const service::Json& request,
                       const std::atomic<bool>* cancel);

  /// Warm-path fast lane for ReplicationServer::fast_path: appends the
  /// cached rendered response line for an identical earlier "ok" request
  /// and returns true. Byte-identical to what handle()+dump would produce.
  bool try_serve_cached_line(const service::Json& request, std::string& out);

  /// Handler to plug into ServerOptions::handler.
  std::function<service::Json(const service::Json&, const std::atomic<bool>*)>
  handler() {
    return [this](const service::Json& request,
                  const std::atomic<bool>* cancel) {
      return handle(request, cancel);
    };
  }

  /// Fast path to plug into ServerOptions::fast_path alongside handler().
  std::function<bool(const service::Json&, std::string&)> fast_path() {
    return [this](const service::Json& request, std::string& out) {
      return try_serve_cached_line(request, out);
    };
  }

  service::ServiceCore& core() { return core_; }
  DiskCache& cache() { return cache_; }

 private:
  void store_line(const service::Json& request,
                  const service::Json& response);
  void maybe_compact_lines();  ///< caller holds line_mutex_

  service::ServiceCore core_;
  DiskCache cache_;
  /// Rendered "ok" response lines keyed by canonical request key; values
  /// are views into line_arena_.
  std::mutex line_mutex_;
  util::Arena line_arena_;
  util::LruCache<std::string, std::string_view> line_cache_;
};

}  // namespace decompeval::cluster
