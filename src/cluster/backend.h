// A cluster backend: ServiceCore wrapped with the persistent disk cache
// and the append-only command journal.
//
// handle() is a drop-in ReplicationServer handler. Cacheable ops
// (run_study / run_replication) consult the disk cache first; clean "ok"
// responses are stored after computation. Because a disk hit replays the
// exact Json that handle() produced — and Json::dump is deterministic —
// a cached response is bit-identical to recomputing it, which is what
// the cold-restart identity test asserts. Degraded responses are never
// stored (DiskCache::store refuses them too).
//
// Durability: a cacheable request that misses the disk cache is
// *in-flight work* — its durable command form (volatile fields stripped)
// is appended to the journal before computation, and once the result
// reaches the disk cache it is *permanent state* (snapshot-covered), so
// compaction drops its journal record. replay_journal() re-issues every
// journaled command through handle(): snapshot-covered commands become
// disk hits, in-flight ones recompute bit-identically — this is how a
// supervisor re-warms a restarted backend (the "journal_replay" op).
// A journal append failure degrades durability, never availability: the
// request is still served and the failure surfaces as a structured
// warning in "journal_stats".
//
// Cluster ops beyond ServiceCore's:
//   "cache_stats"     core stats + disk_* fields (incl. byte totals)
//   "cache_install"   store a replicated {request, response} pair (the
//                     dispatcher's write fan-out; never journaled — the
//                     disk write IS the durability)
//   "cache_gc"        run the janitor (params "max_bytes", "max_age_ms")
//   "journal_stats"   journal counters + structured warnings
//   "journal_replay"  re-warm from the journal (returns replay counts)
//   "journal_compact" drop snapshot-covered records now
//   "stream_*"        the streaming study engine's op family (see
//                     streaming/engine.h). Stream writes are journaled
//                     in absolute (idempotent) form before execution and
//                     replayed like any other command; stream results
//                     are time-varying and therefore exempt from every
//                     cache (disk, rendered-line, and the dispatcher's).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/disk_cache.h"
#include "cluster/journal.h"
#include "service/service.h"
#include "streaming/engine.h"
#include "util/arena.h"
#include "util/lru.h"

namespace decompeval::cluster {

struct ClusterBackendOptions {
  service::ServiceOptions service;
  /// cache.directory empty → the backend runs with no disk cache.
  DiskCacheOptions cache;
  /// journal.path empty → no journal (no durability for in-flight work).
  JournalOptions journal;
  /// Root for *relative* stream arrival-log paths ("log" in stream_open).
  /// Replicated stream commands ship the same logical path to every ring
  /// replica; rooting each backend in its own directory keeps their logs
  /// distinct on a shared filesystem. Empty = paths used verbatim.
  std::string stream_log_dir;
  /// Auto-compact the journal when it outgrows this many bytes (checked
  /// after each store; 0 disables — compaction then only runs via the
  /// "journal_compact" op).
  std::uint64_t journal_compact_bytes = 64u << 10;
  /// LRU bound on the rendered-line cache behind try_serve_cached_line
  /// (0 disables). Forced to 0 whenever a fault plan or cache/journal
  /// fault injector is active, so chaos runs keep their exact hit
  /// sequences.
  std::size_t line_cache_capacity = 256;
};

/// Outcome of one replay_journal() pass (the "journal_replay" op).
struct JournalReplayReport {
  std::uint64_t records = 0;    ///< valid records found in the journal
  std::uint64_t replayed = 0;   ///< distinct commands re-issued
  std::uint64_t ok = 0;         ///< replays that answered "ok"
  std::uint64_t failures = 0;   ///< unparseable records + non-ok replays
  bool clean = true;            ///< journal scanned to EOF without damage
  std::string warning;          ///< why the scan stopped, when !clean
};

class ClusterBackend {
 public:
  explicit ClusterBackend(ClusterBackendOptions options);

  /// Never throws (same contract as ServiceCore::handle).
  service::Json handle(const service::Json& request,
                       const std::atomic<bool>* cancel);

  /// Re-issues every journaled command through handle() (deduplicated by
  /// canonical key, original order). Appends are suppressed while the
  /// replay runs so records are not re-journaled.
  JournalReplayReport replay_journal(const std::atomic<bool>* cancel);

  /// Compacts the journal down to records not yet covered by the disk
  /// cache snapshot. Returns the number of records kept.
  std::size_t compact_journal();

  /// Warm-path fast lane for ReplicationServer::fast_path: appends the
  /// cached rendered response line for an identical earlier "ok" request
  /// and returns true. Byte-identical to what handle()+dump would produce.
  bool try_serve_cached_line(const service::Json& request, std::string& out);

  /// Handler to plug into ServerOptions::handler.
  std::function<service::Json(const service::Json&, const std::atomic<bool>*)>
  handler() {
    return [this](const service::Json& request,
                  const std::atomic<bool>* cancel) {
      return handle(request, cancel);
    };
  }

  /// Fast path to plug into ServerOptions::fast_path alongside handler().
  std::function<bool(const service::Json&, std::string&)> fast_path() {
    return [this](const service::Json& request, std::string& out) {
      return try_serve_cached_line(request, out);
    };
  }

  service::ServiceCore& core() { return core_; }
  DiskCache& cache() { return cache_; }
  Journal& journal() { return journal_; }
  streaming::StreamEngine& streaming() { return streaming_; }
  /// Recent journal-append warnings (bounded; oldest dropped first).
  std::vector<std::string> journal_warnings() const;

 private:
  void journal_command(const service::Json& request);
  void store_line(const service::Json& request,
                  const service::Json& response);
  void maybe_compact_lines();  ///< caller holds line_mutex_
  service::Json cache_install_op(const service::Json& request);
  service::Json cache_gc_op(const service::Json& request);
  service::Json journal_stats_op();
  service::Json journal_replay_op(const std::atomic<bool>* cancel);
  service::Json journal_compact_op();

  service::Json handle_stream_op(const service::Json& request);

  ClusterBackendOptions options_;
  service::ServiceCore core_;
  DiskCache cache_;
  Journal journal_;
  /// Stream sessions, driven by the core's fault injector so the
  /// stream.* sites share one deterministic plan with everything else.
  streaming::StreamEngine streaming_;
  std::atomic<bool> replaying_{false};
  mutable std::mutex journal_warn_mutex_;
  std::vector<std::string> journal_warnings_;
  /// Rendered "ok" response lines keyed by canonical request key; values
  /// are views into line_arena_.
  std::mutex line_mutex_;
  util::Arena line_arena_;
  util::LruCache<std::string, std::string_view> line_cache_;
};

}  // namespace decompeval::cluster
