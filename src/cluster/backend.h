// A cluster backend: ServiceCore wrapped with the persistent disk cache.
//
// handle() is a drop-in ReplicationServer handler. Cacheable ops
// (run_study / run_replication) consult the disk cache first; clean "ok"
// responses are stored after computation. Because a disk hit replays the
// exact Json that handle() produced — and Json::dump is deterministic —
// a cached response is bit-identical to recomputing it, which is what
// the cold-restart identity test asserts. Degraded responses are never
// stored (DiskCache::store refuses them too).
//
// The "cache_stats" op returns ServiceCore's in-memory numbers augmented
// with disk_* fields (hits/misses/stores/failures/invalid files) and the
// cache's recent structured warnings.
#pragma once

#include <atomic>
#include <functional>
#include <utility>

#include "cluster/disk_cache.h"
#include "service/service.h"

namespace decompeval::cluster {

struct ClusterBackendOptions {
  service::ServiceOptions service;
  /// cache.directory empty → the backend runs with no disk cache.
  DiskCacheOptions cache;
};

class ClusterBackend {
 public:
  explicit ClusterBackend(ClusterBackendOptions options);

  /// Never throws (same contract as ServiceCore::handle).
  service::Json handle(const service::Json& request,
                       const std::atomic<bool>* cancel);

  /// Handler to plug into ServerOptions::handler.
  std::function<service::Json(const service::Json&, const std::atomic<bool>*)>
  handler() {
    return [this](const service::Json& request,
                  const std::atomic<bool>* cancel) {
      return handle(request, cancel);
    };
  }

  service::ServiceCore& core() { return core_; }
  DiskCache& cache() { return cache_; }

 private:
  service::ServiceCore core_;
  DiskCache cache_;
};

}  // namespace decompeval::cluster
