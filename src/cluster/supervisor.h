// Backend process supervisor: fork/exec, crash detection, restart with
// backoff, and journal-driven re-warm.
//
// The supervisor owns a set of backend *processes* (each an exec'd
// binary serving a ClusterBackend on a Unix socket — see
// examples/cluster_backend.cpp). A watch thread reaps children with
// waitpid(WNOHANG); any exit — clean, crash, or kill -9 — schedules a
// restart after an exponential backoff (consecutive failed restart
// attempts double the pause; a restart that reaches "serving" resets
// it). After a successful restart the supervisor *re-warms* the backend
// by sending it the "journal_replay" op: snapshot-covered commands come
// back from the disk cache, in-flight ones recompute bit-identically
// (see journal.h for the snapshot/replay split).
//
// Liveness beyond exit: with ping_interval_ms set, the watch thread
// reuses the prober idiom — a cheap "ping" op per backend — and a
// backend that stays silent for ping_failures_before_kill consecutive
// probes is SIGKILLed, which re-enters the ordinary restart path. This
// catches wedged-but-alive processes that waitpid alone never sees.
//
// Shutdown discipline: stop() asks each child to exit via the "shutdown"
// op, escalates to SIGTERM then SIGKILL, and waitpid()s every child —
// the supervisor never leaves zombies behind, including when it is being
// destroyed during stack unwinding. For *abnormal* supervisor death
// (SIGINT/SIGTERM), install_signal_cleanup() arms an async-signal-safe
// handler that SIGKILLs every currently supervised pid from a static
// registry before re-raising; SIGCHLD is left at its default so the
// handler never races the reaper.
//
// Fault site (serial-counter, from SupervisorOptions::fault_plan):
//   "supervisor.restart"  the due restart attempt is skipped and
//                         rescheduled with doubled backoff (simulates a
//                         failed spawn)
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/fault.h"

namespace decompeval::cluster {

struct SupervisedBackend {
  std::string id;                  ///< unique, non-empty
  std::vector<std::string> argv;   ///< absolute binary path + args, exec'd
  std::string socket_path;         ///< for ping / re-warm / shutdown
  /// Set false for a backend with no journal (skips the replay op).
  bool rewarm = true;
};

struct SupervisorOptions {
  std::vector<SupervisedBackend> backends;
  std::uint64_t poll_interval_ms = 20;
  double backoff_initial_ms = 10.0;
  double backoff_max_ms = 2000.0;
  /// Restarts allowed per backend; < 0 = unbounded, 0 = never restart.
  int max_restarts = -1;
  /// How long a freshly (re)started backend gets to answer its first
  /// ping before the attempt counts as failed.
  std::uint64_t serving_timeout_ms = 5000;
  /// Liveness probing of running backends; 0 disables.
  std::uint64_t ping_interval_ms = 0;
  int ping_failures_before_kill = 3;
  double ping_timeout_ms = 500.0;
  /// Schedule for the "supervisor.restart" site.
  util::FaultPlan fault_plan;
};

struct SupervisorStats {
  std::uint64_t spawns = 0;           ///< initial starts + restarts
  std::uint64_t exits_observed = 0;   ///< child exits reaped by the watcher
  std::uint64_t restarts = 0;         ///< successful restarts (serving again)
  std::uint64_t restart_failures = 0; ///< attempts that never reached serving
  std::uint64_t restart_faults = 0;   ///< "supervisor.restart" firings
  std::uint64_t gave_up = 0;          ///< backends past max_restarts
  std::uint64_t rewarm_replayed = 0;  ///< commands re-issued by re-warms
  std::uint64_t rewarm_failures = 0;  ///< replay failures + unclean journals
  std::uint64_t hang_kills = 0;       ///< wedged backends SIGKILLed
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every backend and starts the watch thread. Does not wait for
  /// the children to serve — use wait_until_serving().
  void start();
  /// Stops watching, shuts every child down (op → SIGTERM → SIGKILL) and
  /// reaps them all. Idempotent.
  void stop();

  /// Blocks until the backend answers a ping, or the timeout elapses.
  bool wait_until_serving(const std::string& id, std::uint64_t timeout_ms);

  /// Delivers `sig` to a child (chaos hook: SIGKILL mid-stream).
  void kill_backend(const std::string& id, int sig);

  bool alive(const std::string& id) const;
  pid_t pid_of(const std::string& id) const;
  std::uint64_t restarts_of(const std::string& id) const;
  /// True when the backend exceeded max_restarts and stays down.
  bool given_up(const std::string& id) const;

  SupervisorStats stats() const;

  /// Arms the process-wide abnormal-exit handler (SIGINT/SIGTERM):
  /// SIGKILLs every supervised child, then re-raises. Idempotent.
  static void install_signal_cleanup();

 private:
  struct BackendState {
    SupervisedBackend spec;
    pid_t pid = -1;
    std::uint64_t restarts = 0;        ///< successful (reached serving)
    std::uint64_t attempts = 0;        ///< restart attempts, incl. failed
    int consecutive_failures = 0;
    bool restart_pending = false;
    bool gave_up = false;
    int ping_failures = 0;
    std::chrono::steady_clock::time_point next_restart{};
  };

  void watch_loop();
  /// fork/exec one backend; returns the child pid or -1. Lock-free.
  pid_t spawn(const SupervisedBackend& spec);
  /// Ping `socket_path` once; true on an "ok" answer.
  bool ping(const std::string& socket_path, double timeout_ms) const;
  /// Re-warm a restarted backend via "journal_replay" (best-effort).
  void rewarm(const SupervisedBackend& spec);
  double backoff_ms(int consecutive_failures) const;
  std::size_t index_of(const std::string& id) const;  ///< throws on unknown

  SupervisorOptions options_;
  util::FaultInjector faults_;
  mutable std::mutex mutex_;
  std::vector<BackendState> backends_;
  std::atomic<bool> running_{false};
  std::thread watch_thread_;
  std::chrono::steady_clock::time_point last_ping_{};
  mutable std::mutex stats_mutex_;
  SupervisorStats stats_;
};

}  // namespace decompeval::cluster
