#include "cluster/backend.h"

#include <unistd.h>

#include <vector>

namespace decompeval::cluster {

namespace {

bool cacheable_op(const service::Json& request) {
  if (!request.is_object()) return false;
  const std::string op = request.get_string("op", "");
  return op == "run_study" || op == "run_replication" || op == "annotate";
}

service::Json bad_request(const std::string& message) {
  service::Json r = service::Json::object();
  r.set("status", service::Json::string("bad_request"));
  r.set("error", service::Json::string(message));
  return r;
}

void set_count(service::Json& r, const char* key, std::uint64_t v) {
  r.set(key, service::Json::number(static_cast<double>(v)));
}

constexpr std::size_t kMaxJournalWarnings = 16;

}  // namespace

ClusterBackend::ClusterBackend(ClusterBackendOptions options)
    : options_(std::move(options)),
      core_(options_.service),
      cache_(options_.cache),
      journal_(options_.journal),
      streaming_(&core_.faults(), nullptr, options_.stream_log_dir),
      // Any active fault injection disables the rendered-line fast lane:
      // serving from it would skip service/cache/journal fault sites and
      // shift their deterministic hit sequences.
      line_cache_(options_.service.fault_plan.empty() &&
                          options_.cache.faults == nullptr &&
                          options_.journal.faults == nullptr
                      ? options_.line_cache_capacity
                      : 0) {}

bool ClusterBackend::try_serve_cached_line(const service::Json& request,
                                           std::string& out) {
  if (line_cache_.capacity() == 0 || !cacheable_op(request) ||
      request.get_bool("no_cache", false))
    return false;
  thread_local std::string key;
  key.clear();
  service::canonical_request_key(request, key);
  const std::lock_guard<std::mutex> lock(line_mutex_);
  const std::string_view* hit = line_cache_.find(key);
  if (hit == nullptr) return false;
  out.append(hit->data(), hit->size());
  return true;
}

void ClusterBackend::store_line(const service::Json& request,
                                const service::Json& response) {
  if (line_cache_.capacity() == 0) return;
  thread_local std::string key;
  thread_local std::string rendered;
  key.clear();
  rendered.clear();
  service::canonical_request_key(request, key);
  response.dump_to(rendered);
  const std::lock_guard<std::mutex> lock(line_mutex_);
  line_cache_.put(key, line_arena_.intern(rendered));
  maybe_compact_lines();
}

void ClusterBackend::maybe_compact_lines() {
  // Same dead-byte compaction as ServiceCore's line cache: once evicted
  // and replaced lines dominate the arena, re-intern the survivors onto
  // the rewound arena in LRU order.
  if (line_arena_.live_bytes() < (256u << 10)) return;
  std::size_t live = 0;
  line_cache_.for_each(
      [&live](const std::string&, const std::string_view& v) {
        live += v.size();
      });
  if (line_arena_.live_bytes() < live * 2 + (64u << 10)) return;
  std::vector<std::pair<std::string, std::string>> survivors;
  survivors.reserve(line_cache_.size());
  line_cache_.for_each(
      [&survivors](const std::string& k, const std::string_view& v) {
        survivors.emplace_back(k, std::string(v));
      });
  line_cache_.clear();
  line_arena_.reset();
  for (auto it = survivors.rbegin(); it != survivors.rend(); ++it)
    line_cache_.put(it->first, line_arena_.intern(it->second));
}

void ClusterBackend::journal_command(const service::Json& request) {
  if (!journal_.enabled() || replaying_.load(std::memory_order_acquire))
    return;
  // The durable command form: volatile fields stripped, so the record
  // replays to the same canonical key (and bit-identical result) at any
  // thread count. Json objects are insertion-ordered and dump() is
  // deterministic, so identical logical commands journal identically.
  const service::Json command = service::strip_volatile_fields(request);
  if (!journal_.append(command.dump())) {
    const std::lock_guard<std::mutex> lock(journal_warn_mutex_);
    if (journal_warnings_.size() >= kMaxJournalWarnings)
      journal_warnings_.erase(journal_warnings_.begin());
    journal_warnings_.push_back(
        "journal append failed for key '" +
        service::canonical_request_key(request) +
        "': command served but not durable until cached");
  }
}

std::vector<std::string> ClusterBackend::journal_warnings() const {
  const std::lock_guard<std::mutex> lock(journal_warn_mutex_);
  return journal_warnings_;
}

JournalReplayReport ClusterBackend::replay_journal(
    const std::atomic<bool>* cancel) {
  JournalReplayReport report;
  if (!journal_.enabled()) return report;
  journal_.flush();
  const ReplayedJournal scanned =
      Journal::replay(journal_.path(), options_.journal.faults);
  report.records = scanned.records.size();
  report.clean = scanned.clean;
  report.warning = scanned.warning;

  // Replays must not re-journal: every command below is already in the
  // journal. Requests arriving concurrently skip journaling for the
  // duration too — a bounded durability window during a re-warm.
  replaying_.store(true, std::memory_order_release);
  std::vector<std::string> seen_keys;
  for (const std::string& record : scanned.records) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
    service::Json command;
    try {
      command = service::Json::parse(record);
    } catch (const std::exception&) {
      ++report.failures;
      continue;
    }
    std::string key = service::canonical_request_key(command);
    bool duplicate = false;
    for (const std::string& k : seen_keys)
      if (k == key) {
        duplicate = true;
        break;
      }
    if (duplicate) continue;
    seen_keys.push_back(std::move(key));
    ++report.replayed;
    const service::Json response = handle(command, cancel);
    if (response.get_string("status", "") == "ok")
      ++report.ok;
    else
      ++report.failures;
  }
  replaying_.store(false, std::memory_order_release);
  return report;
}

std::size_t ClusterBackend::compact_journal() {
  if (!journal_.enabled()) return 0;
  // A record is snapshot-covered once its result file exists on disk;
  // unparseable records can never replay, so they are dropped too.
  return journal_.compact([this](std::string_view record) {
    if (!cache_.enabled()) return true;  // no snapshot: keep everything
    try {
      const service::Json command = service::Json::parse(record);
      return ::access(cache_.path_for(cache_.digest(command)).c_str(),
                      F_OK) != 0;
    } catch (const std::exception&) {
      return false;
    }
  });
}

service::Json ClusterBackend::cache_install_op(const service::Json& request) {
  const service::Json* installed = request.get("request");
  const service::Json* response = request.get("response");
  if (installed == nullptr || !installed->is_object())
    return bad_request("cache_install needs an object field 'request'");
  if (response == nullptr || !response->is_object())
    return bad_request("cache_install needs an object field 'response'");
  if (response->get_string("status", "") != "ok")
    return bad_request("cache_install only accepts status \"ok\" responses");
  if (!cacheable_op(*installed))
    return bad_request("cache_install only accepts cacheable ops");
  const std::string key = service::canonical_request_key(*installed);
  const bool stored = cache_.store(cache_.digest(*installed), *response, key);
  // Warm the rendered-line lane too: the replica can then answer a
  // failover read on the connection thread.
  if (stored) store_line(*installed, *response);
  service::Json r = service::Json::object();
  r.set("status", service::Json::string("ok"));
  r.set("op", service::Json::string("cache_install"));
  r.set("stored", service::Json::boolean(stored));
  return r;
}

service::Json ClusterBackend::cache_gc_op(const service::Json& request) {
  CacheGcOptions bounds;
  bounds.max_bytes =
      static_cast<std::uint64_t>(request.get_number("max_bytes", 0.0));
  bounds.max_age_ms =
      static_cast<std::uint64_t>(request.get_number("max_age_ms", 0.0));
  const CacheGcReport report = cache_.gc(bounds);
  service::Json r = service::Json::object();
  r.set("status", service::Json::string("ok"));
  r.set("op", service::Json::string("cache_gc"));
  set_count(r, "files_scanned", report.files_scanned);
  set_count(r, "files_deleted", report.files_deleted);
  set_count(r, "temp_files_deleted", report.temp_files_deleted);
  set_count(r, "bytes_before", report.bytes_before);
  set_count(r, "bytes_after", report.bytes_after);
  set_count(r, "newest_kept", report.newest_kept);
  return r;
}

service::Json ClusterBackend::journal_stats_op() {
  const JournalStats s = journal_.stats();
  service::Json r = service::Json::object();
  r.set("status", service::Json::string("ok"));
  r.set("op", service::Json::string("journal_stats"));
  r.set("enabled", service::Json::boolean(journal_.enabled()));
  set_count(r, "appends", s.appends);
  set_count(r, "append_failures", s.append_failures);
  set_count(r, "fsyncs", s.fsyncs);
  set_count(r, "compactions", s.compactions);
  set_count(r, "records_dropped", s.records_dropped);
  set_count(r, "bytes", s.bytes);
  service::Json warnings = service::Json::array();
  for (const std::string& w : journal_warnings())
    warnings.push_back(service::Json::string(w));
  r.set("warnings", warnings);
  return r;
}

service::Json ClusterBackend::journal_replay_op(
    const std::atomic<bool>* cancel) {
  const JournalReplayReport report = replay_journal(cancel);
  service::Json r = service::Json::object();
  r.set("status", service::Json::string("ok"));
  r.set("op", service::Json::string("journal_replay"));
  set_count(r, "records", report.records);
  set_count(r, "replayed", report.replayed);
  set_count(r, "replay_ok", report.ok);
  set_count(r, "failures", report.failures);
  r.set("clean", service::Json::boolean(report.clean));
  if (!report.warning.empty())
    r.set("warning", service::Json::string(report.warning));
  return r;
}

service::Json ClusterBackend::journal_compact_op() {
  const std::size_t kept = compact_journal();
  service::Json r = service::Json::object();
  r.set("status", service::Json::string("ok"));
  r.set("op", service::Json::string("journal_compact"));
  set_count(r, "records_kept", kept);
  set_count(r, "bytes", journal_.stats().bytes);
  return r;
}

service::Json ClusterBackend::handle_stream_op(const service::Json& request) {
  // Stream writes journal in *absolute* form only: a relative "count"
  // absorb is canonicalized to "upto" first, so the durable record is
  // idempotent under replay dedup and replica fan-out. Stream results
  // are time-varying and never touch the disk or line caches.
  service::Json canonical = request;
  service::Json error;
  if (!streaming_.canonicalize(canonical, &error)) return error;
  if (streaming::StreamEngine::is_stream_write(
          canonical.get_string("op", "")))
    journal_command(canonical);
  return streaming_.handle(canonical);
}

service::Json ClusterBackend::handle(const service::Json& request,
                                     const std::atomic<bool>* cancel) {
  if (request.is_object()) {
    const std::string op = request.get_string("op", "");
    if (op == "cache_stats") {
      service::Json r = core_.handle(request, cancel);
      const DiskCacheStats disk = cache_.stats();
      r.set("disk_enabled", service::Json::boolean(cache_.enabled()));
      set_count(r, "disk_memory_hits", disk.memory_hits);
      set_count(r, "disk_hits", disk.disk_hits);
      set_count(r, "disk_misses", disk.misses);
      set_count(r, "disk_stores", disk.stores);
      set_count(r, "disk_store_failures", disk.store_failures);
      set_count(r, "disk_invalid_files", disk.invalid_files);
      set_count(r, "disk_growth_refusals", disk.growth_refusals);
      set_count(r, "disk_gc_runs", disk.gc_runs);
      set_count(r, "disk_bytes", disk.bytes);
      set_count(r, "disk_max_bytes", cache_.max_bytes());
      service::Json warnings = service::Json::array();
      for (const std::string& w : cache_.warnings())
        warnings.push_back(service::Json::string(w));
      r.set("disk_warnings", warnings);
      return r;
    }
    if (op == "cache_install") return cache_install_op(request);
    if (op == "cache_gc") return cache_gc_op(request);
    if (op == "journal_stats") return journal_stats_op();
    if (op == "journal_replay") return journal_replay_op(cancel);
    if (op == "journal_compact") return journal_compact_op();
    if (streaming::StreamEngine::is_stream_op(op))
      return handle_stream_op(request);
  }

  const bool no_cache =
      request.is_object() && request.get_bool("no_cache", false);
  const bool try_cache = cache_.enabled() && cacheable_op(request) && !no_cache;
  std::string digest;
  std::string key;
  if (try_cache) {
    key = service::canonical_request_key(request);
    digest = cache_.digest(request);
    service::Json cached;
    if (cache_.load(digest, &cached)) {
      store_line(request, cached);
      return cached;
    }
  }

  // In-flight from here until the disk store lands: journal the command
  // so a crash mid-computation can be replayed.
  if (cacheable_op(request)) journal_command(request);

  service::Json response = core_.handle(request, cancel);
  if (response.get_string("status", "") == "ok") {
    if (try_cache) {
      cache_.store(digest, response, key);
      if (options_.journal_compact_bytes > 0 && journal_.enabled() &&
          journal_.stats().bytes > options_.journal_compact_bytes)
        compact_journal();
    }
    if (cacheable_op(request) && !no_cache) store_line(request, response);
  }
  return response;
}

}  // namespace decompeval::cluster
