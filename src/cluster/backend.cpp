#include "cluster/backend.h"

#include <vector>

namespace decompeval::cluster {

namespace {

bool cacheable_op(const service::Json& request) {
  if (!request.is_object()) return false;
  const std::string op = request.get_string("op", "");
  return op == "run_study" || op == "run_replication";
}

}  // namespace

ClusterBackend::ClusterBackend(ClusterBackendOptions options)
    : core_(options.service),
      cache_(std::move(options.cache)),
      // Any active fault injection disables the rendered-line fast lane:
      // serving from it would skip service/cache fault sites and shift
      // their deterministic hit sequences. (Reading options.cache.faults
      // after the move above is fine — moving the struct copies the raw
      // pointer member.)
      line_cache_(options.service.fault_plan.empty() &&
                          options.cache.faults == nullptr
                      ? options.line_cache_capacity
                      : 0) {}

bool ClusterBackend::try_serve_cached_line(const service::Json& request,
                                           std::string& out) {
  if (line_cache_.capacity() == 0 || !cacheable_op(request) ||
      request.get_bool("no_cache", false))
    return false;
  thread_local std::string key;
  key.clear();
  service::canonical_request_key(request, key);
  const std::lock_guard<std::mutex> lock(line_mutex_);
  const std::string_view* hit = line_cache_.find(key);
  if (hit == nullptr) return false;
  out.append(hit->data(), hit->size());
  return true;
}

void ClusterBackend::store_line(const service::Json& request,
                                const service::Json& response) {
  if (line_cache_.capacity() == 0) return;
  thread_local std::string key;
  thread_local std::string rendered;
  key.clear();
  rendered.clear();
  service::canonical_request_key(request, key);
  response.dump_to(rendered);
  const std::lock_guard<std::mutex> lock(line_mutex_);
  line_cache_.put(key, line_arena_.intern(rendered));
  maybe_compact_lines();
}

void ClusterBackend::maybe_compact_lines() {
  // Same dead-byte compaction as ServiceCore's line cache: once evicted
  // and replaced lines dominate the arena, re-intern the survivors onto
  // the rewound arena in LRU order.
  if (line_arena_.live_bytes() < (256u << 10)) return;
  std::size_t live = 0;
  line_cache_.for_each(
      [&live](const std::string&, const std::string_view& v) {
        live += v.size();
      });
  if (line_arena_.live_bytes() < live * 2 + (64u << 10)) return;
  std::vector<std::pair<std::string, std::string>> survivors;
  survivors.reserve(line_cache_.size());
  line_cache_.for_each(
      [&survivors](const std::string& k, const std::string_view& v) {
        survivors.emplace_back(k, std::string(v));
      });
  line_cache_.clear();
  line_arena_.reset();
  for (auto it = survivors.rbegin(); it != survivors.rend(); ++it)
    line_cache_.put(it->first, line_arena_.intern(it->second));
}

service::Json ClusterBackend::handle(const service::Json& request,
                                     const std::atomic<bool>* cancel) {
  if (request.is_object() && request.get_string("op", "") == "cache_stats") {
    service::Json r = core_.handle(request, cancel);
    const DiskCacheStats disk = cache_.stats();
    r.set("disk_enabled", service::Json::boolean(cache_.enabled()));
    r.set("disk_memory_hits",
          service::Json::number(static_cast<double>(disk.memory_hits)));
    r.set("disk_hits",
          service::Json::number(static_cast<double>(disk.disk_hits)));
    r.set("disk_misses",
          service::Json::number(static_cast<double>(disk.misses)));
    r.set("disk_stores",
          service::Json::number(static_cast<double>(disk.stores)));
    r.set("disk_store_failures",
          service::Json::number(static_cast<double>(disk.store_failures)));
    r.set("disk_invalid_files",
          service::Json::number(static_cast<double>(disk.invalid_files)));
    service::Json warnings = service::Json::array();
    for (const std::string& w : cache_.warnings())
      warnings.push_back(service::Json::string(w));
    r.set("disk_warnings", warnings);
    return r;
  }

  const bool no_cache =
      request.is_object() && request.get_bool("no_cache", false);
  const bool try_cache = cache_.enabled() && cacheable_op(request) && !no_cache;
  std::string digest;
  if (try_cache) {
    digest = cache_.digest(request);
    service::Json cached;
    if (cache_.load(digest, &cached)) {
      store_line(request, cached);
      return cached;
    }
  }

  service::Json response = core_.handle(request, cancel);
  if (response.get_string("status", "") == "ok") {
    if (try_cache) cache_.store(digest, response);
    if (cacheable_op(request) && !no_cache) store_line(request, response);
  }
  return response;
}

}  // namespace decompeval::cluster
