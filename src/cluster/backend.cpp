#include "cluster/backend.h"

namespace decompeval::cluster {

namespace {

bool cacheable_op(const service::Json& request) {
  if (!request.is_object()) return false;
  const std::string op = request.get_string("op", "");
  return op == "run_study" || op == "run_replication";
}

}  // namespace

ClusterBackend::ClusterBackend(ClusterBackendOptions options)
    : core_(options.service), cache_(std::move(options.cache)) {}

service::Json ClusterBackend::handle(const service::Json& request,
                                     const std::atomic<bool>* cancel) {
  if (request.is_object() && request.get_string("op", "") == "cache_stats") {
    service::Json r = core_.handle(request, cancel);
    const DiskCacheStats disk = cache_.stats();
    r.set("disk_enabled", service::Json::boolean(cache_.enabled()));
    r.set("disk_memory_hits",
          service::Json::number(static_cast<double>(disk.memory_hits)));
    r.set("disk_hits",
          service::Json::number(static_cast<double>(disk.disk_hits)));
    r.set("disk_misses",
          service::Json::number(static_cast<double>(disk.misses)));
    r.set("disk_stores",
          service::Json::number(static_cast<double>(disk.stores)));
    r.set("disk_store_failures",
          service::Json::number(static_cast<double>(disk.store_failures)));
    r.set("disk_invalid_files",
          service::Json::number(static_cast<double>(disk.invalid_files)));
    service::Json warnings = service::Json::array();
    for (const std::string& w : cache_.warnings())
      warnings.push_back(service::Json::string(w));
    r.set("disk_warnings", warnings);
    return r;
  }

  const bool no_cache =
      request.is_object() && request.get_bool("no_cache", false);
  const bool try_cache = cache_.enabled() && cacheable_op(request) && !no_cache;
  std::string digest;
  if (try_cache) {
    digest = cache_.digest(request);
    service::Json cached;
    if (cache_.load(digest, &cached)) return cached;
  }

  service::Json response = core_.handle(request, cancel);
  if (try_cache && response.get_string("status", "") == "ok")
    cache_.store(digest, response);
  return response;
}

}  // namespace decompeval::cluster
