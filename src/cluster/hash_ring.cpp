#include "cluster/hash_ring.h"

#include <algorithm>

#include "util/check.h"

namespace decompeval::cluster {

std::uint64_t HashRing::hash(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

// FNV-1a hashes of short keys differing only in a trailing character
// land within a few bits of each other — fine for digests, useless for
// spreading keys over a 2^64 ring. The splitmix64 finalizer avalanches
// every input bit across the word before a hash becomes a ring position.
std::uint64_t ring_position(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

HashRing::HashRing(std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  DE_EXPECTS_MSG(virtual_nodes_ > 0, "HashRing needs at least 1 virtual node");
}

void HashRing::add(const std::string& backend_id) {
  for (const std::string& existing : backends_)
    if (existing == backend_id) return;
  const std::size_t index = backends_.size();
  backends_.push_back(backend_id);
  points_.reserve(points_.size() + virtual_nodes_);
  for (std::size_t k = 0; k < virtual_nodes_; ++k)
    points_.emplace_back(
        ring_position(hash(backend_id + "#" + std::to_string(k))), index);
  std::sort(points_.begin(), points_.end());
}

std::vector<std::string> HashRing::route(const std::string& key,
                                         std::size_t max_candidates) const {
  std::vector<std::string> out;
  if (points_.empty() || max_candidates == 0) return out;
  const std::uint64_t h = ring_position(hash(key));
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, std::size_t{0}));
  std::vector<bool> seen(backends_.size(), false);
  const std::size_t want = std::min(max_candidates, backends_.size());
  for (std::size_t step = 0; step < points_.size() && out.size() < want;
       ++step, ++it) {
    if (it == points_.end()) it = points_.begin();  // wrap the ring
    if (seen[it->second]) continue;
    seen[it->second] = true;
    out.push_back(backends_[it->second]);
  }
  return out;
}

void HashRing::route_into(std::string_view key, std::size_t max_candidates,
                          std::vector<std::size_t>& out,
                          std::vector<char>& seen) const {
  out.clear();
  if (points_.empty() || max_candidates == 0) return;
  const std::uint64_t h = ring_position(hash(key));
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, std::size_t{0}));
  seen.assign(backends_.size(), 0);
  const std::size_t want = std::min(max_candidates, backends_.size());
  for (std::size_t step = 0; step < points_.size() && out.size() < want;
       ++step, ++it) {
    if (it == points_.end()) it = points_.begin();  // wrap the ring
    if (seen[it->second]) continue;
    seen[it->second] = 1;
    out.push_back(it->second);
  }
}

std::vector<std::string> HashRing::replicas_for(const std::string& key,
                                                std::size_t r) const {
  // Deliberately the same walk as route(): the replica set IS the first r
  // steps of the failover order, which is what makes replication
  // prefix-stable with failover.
  return route(key, r);
}

std::string HashRing::primary(const std::string& key) const {
  const auto r = route(key, 1);
  return r.empty() ? std::string() : r.front();
}

}  // namespace decompeval::cluster
