// Append-only command journal: the replay half of the durability story.
//
// The snapshot/replay split follows the permanent-state vs in-flight-work
// line: results that made it into the DiskCache are *permanent state*
// (the snapshot — they survive a crash as complete, digest-verified
// files), while commands whose results are not yet on disk are
// *in-flight work* and live here as replayable records. A restarted
// backend is re-warmed by replaying the journal: snapshot-covered
// commands turn into disk hits, in-flight ones recompute — and because
// every pipeline stage is bit-identical at any thread count, replay
// reproduces the exact pre-crash responses.
//
// Record format (little-endian, fixed):
//   [u32 payload length][u64 FNV-1a checksum of payload][payload bytes]
// A record is valid only when the length is sane (<= kMaxRecordBytes and
// within the file) and the checksum matches. replay() scans from the
// start and stops at the first invalid record, returning every record
// before it plus a structured warning — a torn tail (the expected shape
// of a crash mid-append) costs the tail, never the journal.
//
// Durability batching: append() buffers nothing (each record is one
// write(2) to an O_APPEND fd) but fsync(2) is batched — every
// `fsync_every` appends, plus on flush() and close. A crash can
// therefore lose at most the last fsync_every-1 records; fsync_every=1
// gives per-record durability.
//
// Compaction rewrites the journal keeping only records the caller still
// wants (in practice: records whose digest is NOT yet in the disk
// cache), via temp-file + rename(2) so a crash mid-compaction leaves the
// old journal intact.
//
// Fault sites (serial-counter, from JournalOptions::faults):
//   "journal.append"  the append fails cleanly (no bytes written); the
//                     command is served but not durable — callers degrade
//                     to a structured warning, never an error
//   "journal.replay"  replay treats the next record as corrupt and stops
//                     there (simulates a read error mid-replay)
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/fault.h"

namespace decompeval::cluster {

struct JournalOptions {
  /// Journal file path. Empty disables the journal (append() is a no-op
  /// returning false, stats stay zero).
  std::string path;
  /// fsync after this many appends (1 = every append). flush() and the
  /// destructor always sync outstanding records.
  std::size_t fsync_every = 8;
  /// Optional injector for the "journal.append" site.
  util::FaultInjector* faults = nullptr;
};

struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t append_failures = 0;  ///< IO errors and injected faults
  std::uint64_t fsyncs = 0;
  std::uint64_t compactions = 0;
  std::uint64_t records_dropped = 0;  ///< by compaction
  std::uint64_t bytes = 0;            ///< current journal file size
};

/// Result of scanning a journal file. `clean` is false when the scan
/// stopped before end-of-file (torn tail, corrupt record, flipped byte,
/// injected replay fault); `warning` then says where and why.
struct ReplayedJournal {
  std::vector<std::string> records;
  bool clean = true;
  std::uint64_t bytes_scanned = 0;  ///< offset of the first invalid byte
  std::string warning;
};

class Journal {
 public:
  explicit Journal(JournalOptions options);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool enabled() const { return !options_.path.empty(); }
  const std::string& path() const { return options_.path; }

  /// Appends one record (single write(2); length-prefixed + checksummed).
  /// Returns false — leaving the journal exactly as it was — when the
  /// journal is disabled, IO fails, or "journal.append" fires.
  bool append(std::string_view payload);

  /// fsyncs outstanding records now. No-op when everything is synced.
  void flush();

  /// Scans `path` and returns every valid record up to the first invalid
  /// one (see ReplayedJournal). Never throws; a missing file is an empty
  /// clean replay. `faults` drives the "journal.replay" site.
  static ReplayedJournal replay(const std::string& path,
                                util::FaultInjector* faults = nullptr);

  /// Rewrites the journal keeping only records for which keep() returns
  /// true (temp + rename; the old journal survives any failure). Returns
  /// the number of records kept. Also drops any torn tail.
  std::size_t compact(const std::function<bool(std::string_view)>& keep);

  JournalStats stats() const;

  /// Hard cap on a single record; longer appends fail, longer lengths in
  /// a file mark the record (and everything after it) invalid.
  static constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

 private:
  bool open_for_append();        ///< caller holds mutex_
  bool write_record(int fd, std::string_view payload);
  void sync_locked();            ///< caller holds mutex_

  JournalOptions options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::size_t unsynced_ = 0;
  JournalStats stats_;
};

}  // namespace decompeval::cluster
