#include "mixed/glmm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <utility>

#include "linalg/matrix.h"
#include "mixed/moment_starts.h"
#include "mixed/nelder_mead.h"
#include "statdist/distributions.h"
#include "util/check.h"

namespace decompeval::mixed {

namespace {

double logistic(double eta) { return 1.0 / (1.0 + std::exp(-eta)); }

// Binomial deviance residual sum: −2 Σ [y log μ + (1−y) log(1−μ)].
double binomial_deviance(const linalg::Vector& y, const linalg::Vector& mu) {
  double dev = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double m = std::clamp(mu[i], 1e-12, 1.0 - 1e-12);
    dev += y[i] > 0.5 ? -2.0 * std::log(m) : -2.0 * std::log1p(-m);
  }
  return dev;
}

struct PirlsResult {
  linalg::Vector u;          // conditional modes (spherical scale)
  double laplace_deviance;   // devres + ‖u‖² + log|H|
  bool converged;
};

// Finds the conditional modes of u for fixed beta and theta, returning the
// Laplace-approximate deviance.
PirlsResult pirls(const MixedModelData& d, const std::vector<double>& beta,
                  double theta_u, double theta_q, linalg::Vector u_start) {
  const std::size_t n = d.n_observations();
  const std::size_t p = d.n_fixed_effects();
  const std::size_t q = d.n_users + d.n_questions;

  linalg::Vector xbeta(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < p; ++j) v += d.x(i, j) * beta[j];
    xbeta[i] = v;
  }

  const auto eta_of = [&](const linalg::Vector& u, std::size_t i) {
    return xbeta[i] + theta_u * u[d.user[i]] +
           theta_q * u[d.n_users + d.question[i]];
  };
  const auto penalized_deviance = [&](const linalg::Vector& u) {
    linalg::Vector mu(n);
    for (std::size_t i = 0; i < n; ++i) mu[i] = logistic(eta_of(u, i));
    return binomial_deviance(d.y, mu) + linalg::dot(u, u);
  };

  linalg::Vector u = std::move(u_start);
  if (u.size() != q) u.assign(q, 0.0);
  double pdev = penalized_deviance(u);

  linalg::Matrix h(q, q);
  bool converged = false;
  for (int iter = 0; iter < 100; ++iter) {
    // Weights and score at the current modes.
    linalg::Vector score(q, 0.0);
    h = linalg::Matrix(q, q);
    for (std::size_t i = 0; i < n; ++i) {
      const double mu = logistic(eta_of(u, i));
      const double w = std::max(mu * (1.0 - mu), 1e-10);
      const double resid = d.y[i] - mu;
      const std::size_t cu = d.user[i];
      const std::size_t cq = d.n_users + d.question[i];
      score[cu] += theta_u * resid;
      score[cq] += theta_q * resid;
      h(cu, cu) += theta_u * theta_u * w;
      h(cq, cq) += theta_q * theta_q * w;
      h(cu, cq) += theta_u * theta_q * w;
      h(cq, cu) += theta_u * theta_q * w;
    }
    for (std::size_t j = 0; j < q; ++j) {
      score[j] -= u[j];
      h(j, j) += 1.0;
    }

    const linalg::Cholesky chol(h);
    const linalg::Vector delta = chol.solve(score);

    // Step halving to guarantee descent of the penalized deviance.
    double step = 1.0;
    linalg::Vector u_new = u;
    double pdev_new = pdev;
    for (int half = 0; half < 20; ++half) {
      for (std::size_t j = 0; j < q; ++j) u_new[j] = u[j] + step * delta[j];
      pdev_new = penalized_deviance(u_new);
      if (pdev_new <= pdev + 1e-12) break;
      step *= 0.5;
    }
    const double improvement = pdev - pdev_new;
    u = u_new;
    pdev = pdev_new;
    if (std::abs(improvement) < 1e-10 && linalg::norm2(delta) * step < 1e-8) {
      converged = true;
      break;
    }
  }

  // Recompute H at the final modes for the determinant term.
  linalg::Matrix h_final(q, q);
  for (std::size_t i = 0; i < n; ++i) {
    const double mu = logistic(eta_of(u, i));
    const double w = std::max(mu * (1.0 - mu), 1e-10);
    const std::size_t cu = d.user[i];
    const std::size_t cq = d.n_users + d.question[i];
    h_final(cu, cu) += theta_u * theta_u * w;
    h_final(cq, cq) += theta_q * theta_q * w;
    h_final(cu, cq) += theta_u * theta_q * w;
    h_final(cq, cu) += theta_u * theta_q * w;
  }
  h_final.add_diagonal(1.0);
  const linalg::Cholesky chol_final(h_final);

  PirlsResult out;
  out.laplace_deviance = pdev + chol_final.log_det();
  out.u = std::move(u);
  out.converged = converged;
  return out;
}

}  // namespace

GlmmFit fit_logistic_glmm(const MixedModelData& data,
                          const FitOptions& options) {
  // The deadline gate precedes validation so an already-expired service
  // request costs nothing and touches no model state.
  options.deadline.check("fit_logistic_glmm entry");
  data.validate();
  for (const double v : data.y)
    DE_EXPECTS_MSG(v == 0.0 || v == 1.0, "GLMM response must be binary 0/1");

  const std::size_t n = data.n_observations();
  const std::size_t p = data.n_fixed_effects();
  const std::size_t q = data.n_users + data.n_questions;

  // Outer parameter vector: [theta_u, theta_q, beta...]. Each objective
  // instance owns its PIRLS warm start (it speeds the outer optimization
  // considerably), so concurrent multi-start simplices never share state.
  const auto objective_factory = [&data, q]() {
    auto warm_u = std::make_shared<linalg::Vector>(q, 0.0);
    return [&data, warm_u](const std::vector<double>& v) {
      const double theta_u = std::abs(v[0]);
      const double theta_q = std::abs(v[1]);
      const std::vector<double> beta(v.begin() + 2, v.end());
      PirlsResult r = pirls(data, beta, theta_u, theta_q, *warm_u);
      *warm_u = std::move(r.u);
      return r.laplace_deviance;
    };
  };

  std::vector<double> start(2 + p, 0.0);
  start[0] = 1.0;
  start[1] = 1.0;
  double ybar = 0.0;
  for (const double v : data.y) ybar += v;
  ybar /= static_cast<double>(n);
  ybar = std::clamp(ybar, 0.01, 0.99);
  start[2] = std::log(ybar / (1.0 - ybar));  // intercept at marginal logit

  NelderMeadOptions opts;
  opts.initial_step = 0.4;
  opts.tolerance = 1e-8;
  opts.max_evaluations = 40000;
  FitOptions search_options = options;
  if (options.moment_starts && options.n_starts > 1) {
    // Candidates n_starts and n_starts + 1: ANOVA method-of-moments thetas.
    for (auto& theta : moment_theta_starts(data, /*binary_response=*/true))
      search_options.extra_theta_starts.push_back(std::move(theta));
  }
  MultiStartOutcome search = multi_start_nelder_mead(
      objective_factory, start, /*n_theta=*/2, opts, search_options);
  const NelderMeadResult& opt = search.best;

  const double theta_u = std::abs(opt.x[0]);
  const double theta_q = std::abs(opt.x[1]);
  std::vector<double> beta(opt.x.begin() + 2, opt.x.end());
  PirlsResult final_fit =
      pirls(data, beta, theta_u, theta_q, linalg::Vector(q, 0.0));

  GlmmFit fit;
  fit.converged = opt.converged && final_fit.converged;
  fit.multi_start = std::move(search.report);
  fit.n_observations = n;
  fit.deviance = final_fit.laplace_deviance;
  fit.sigma_user = theta_u;
  fit.sigma_question = theta_q;

  // Wald covariance from the numerical Hessian of the deviance in beta.
  const auto dev_of_beta = [&](const std::vector<double>& b) {
    return pirls(data, b, theta_u, theta_q, final_fit.u).laplace_deviance;
  };
  linalg::Matrix hessian(p, p);
  const double base = fit.deviance;
  std::vector<double> h_steps(p);
  for (std::size_t j = 0; j < p; ++j)
    h_steps[j] = 1e-4 * (1.0 + std::abs(beta[j]));
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t k = j; k < p; ++k) {
      std::vector<double> b = beta;
      if (j == k) {
        b[j] = beta[j] + h_steps[j];
        const double fp = dev_of_beta(b);
        b[j] = beta[j] - h_steps[j];
        const double fm = dev_of_beta(b);
        hessian(j, j) = (fp - 2.0 * base + fm) / (h_steps[j] * h_steps[j]);
      } else {
        b[j] = beta[j] + h_steps[j];
        b[k] = beta[k] + h_steps[k];
        const double fpp = dev_of_beta(b);
        b[k] = beta[k] - h_steps[k];
        const double fpm = dev_of_beta(b);
        b[j] = beta[j] - h_steps[j];
        const double fmm = dev_of_beta(b);
        b[k] = beta[k] + h_steps[k];
        const double fmp = dev_of_beta(b);
        const double v =
            (fpp - fpm - fmp + fmm) / (4.0 * h_steps[j] * h_steps[k]);
        hessian(j, k) = v;
        hessian(k, j) = v;
      }
    }
  }
  // Observed information is Hessian(deviance)/2; covariance is its inverse.
  linalg::Matrix info = hessian.scaled(0.5);
  linalg::Matrix cov_beta;
  try {
    cov_beta = linalg::spd_inverse(info);
  } catch (const NumericalError&) {
    // Ridge the information matrix if finite differences made it indefinite.
    info.add_diagonal(1e-6);
    cov_beta = linalg::spd_inverse(info);
  }

  fit.coefficients.resize(p);
  for (std::size_t j = 0; j < p; ++j) {
    Coefficient& c = fit.coefficients[j];
    c.name = data.fixed_effect_names[j];
    c.estimate = beta[j];
    c.std_error = std::sqrt(std::max(cov_beta(j, j), 0.0));
    c.z_value = c.std_error > 0.0 ? c.estimate / c.std_error : 0.0;
    c.p_value = 2.0 * (1.0 - statdist::normal_cdf(std::abs(c.z_value)));
  }

  fit.random_user.resize(data.n_users);
  for (std::size_t j = 0; j < data.n_users; ++j)
    fit.random_user[j] = theta_u * final_fit.u[j];
  fit.random_question.resize(data.n_questions);
  for (std::size_t j = 0; j < data.n_questions; ++j)
    fit.random_question[j] = theta_q * final_fit.u[data.n_users + j];

  // Nakagawa R² with the logit-link distribution-specific residual π²/3.
  linalg::Vector fitted_fixed(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < p; ++j) v += data.x(i, j) * beta[j];
    fitted_fixed[i] = v;
  }
  double mean_fixed = 0.0;
  for (const double v : fitted_fixed) mean_fixed += v;
  mean_fixed /= static_cast<double>(n);
  double var_fixed = 0.0;
  for (const double v : fitted_fixed)
    var_fixed += (v - mean_fixed) * (v - mean_fixed);
  var_fixed /= static_cast<double>(n);
  const double var_user = theta_u * theta_u;
  const double var_question = theta_q * theta_q;
  const double var_resid = std::numbers::pi * std::numbers::pi / 3.0;
  const double total = var_fixed + var_user + var_question + var_resid;
  fit.r2_marginal = var_fixed / total;
  fit.r2_conditional = (var_fixed + var_user + var_question) / total;

  const double n_params = static_cast<double>(p) + 2.0;
  fit.aic = fit.deviance + 2.0 * n_params;
  fit.bic = fit.deviance + std::log(static_cast<double>(n)) * n_params;
  return fit;
}

std::vector<double> warm_start_from(const GlmmFit& fit) {
  std::vector<double> x;
  x.reserve(2 + fit.coefficients.size());
  x.push_back(fit.sigma_user);
  x.push_back(fit.sigma_question);
  for (const Coefficient& c : fit.coefficients) x.push_back(c.estimate);
  return x;
}

}  // namespace decompeval::mixed
