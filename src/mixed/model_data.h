// Shared data layout for the mixed-effects fitters.
//
// Both of the paper's regressions have the same random-effects structure:
// two crossed random intercept factors, user and question —
//   response ~ fixed effects + (1|user) + (1|question)
// so the fitters are specialized to exactly that design, which keeps the
// penalized-least-squares system small and dense (dimension p + nU + nQ).
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace decompeval::mixed {

struct MixedModelData {
  /// n × p fixed-effects design matrix including the intercept column.
  linalg::Matrix x;
  /// Column names of `x`, for reporting ("(Intercept)", "Uses DIRTY", ...).
  std::vector<std::string> fixed_effect_names;
  /// Response vector (binary 0/1 for the GLMM, continuous for the LMM).
  linalg::Vector y;
  /// Grouping indices, each observation mapped to [0, n_users) and
  /// [0, n_questions).
  std::vector<std::size_t> user;
  std::vector<std::size_t> question;
  std::size_t n_users = 0;
  std::size_t n_questions = 0;

  std::size_t n_observations() const { return y.size(); }
  std::size_t n_fixed_effects() const { return x.cols(); }

  /// Validates shapes and index ranges; throws PreconditionError if bad.
  void validate() const;
};

/// One fitted fixed-effect coefficient.
struct Coefficient {
  std::string name;
  double estimate = 0.0;
  double std_error = 0.0;
  double z_value = 0.0;   ///< Wald statistic (t for LMM, z for GLMM)
  double p_value = 1.0;   ///< two-sided normal-approximation p
};

}  // namespace decompeval::mixed
