// Method-of-moments starting points for the variance-component search.
//
// The multi-start driver's jittered starts explore blindly around the
// heuristic theta = (1, 1); on real study data the optimum can sit far
// from it (e.g. sigma_user/sigma_e near 0.2 for the timing model), which
// costs the simplex dozens of iterations just to travel there. A
// balanced-ANOVA decomposition of the (fixed-effect-adjusted) response
// gives closed-form moment estimates of both variance components in O(n),
// and those estimates land close enough to the REML/Laplace optimum that
// Nelder-Mead started there converges in fewer evaluations than the
// heuristic start. The fitters append these as multi-start candidates
// n_starts and n_starts + 1.
//
// The decomposition works on the cell-mean table of the crossed
// user x question design (unweighted means, so mild unbalance is fine):
//   MSA = b * sum_i (rbar_i - grand)^2 / (a - 1)
//   MSB = a * sum_j (rbar_j - grand)^2 / (b - 1)
//   MSE = sum_ij (c_ij - rbar_i - rbar_j + grand)^2 / ((a - 1)(b - 1))
// with sigma_u^2 = (MSA - MSE)/b, sigma_q^2 = (MSB - MSE)/a — Searle's
// classic two-way estimators, the same closed forms the oracle test pins
// the REML fitter against on balanced data.
#pragma once

#include <vector>

#include "mixed/model_data.h"

namespace decompeval::mixed {

/// Moment estimates of the theta start coordinates for `data`.
///
/// Returns two candidates, each {theta_user, theta_question}:
///   [0] the raw moment estimate,
///   [1] its geometric midpoint with the heuristic start (sqrt of [0]),
///       hedging against moment estimates degraded by unbalance.
/// For the LMM (`binary_response == false`) thetas are relative factors
/// sigma_component / sigma_residual; for the GLMM they are logit-scale
/// standard deviations obtained by a delta-method rescale of the
/// probability-scale components. All coordinates are clamped to
/// [0.05, 20] so a degenerate decomposition still yields a usable start.
/// Pure function of `data`; never throws on degenerate input.
std::vector<std::vector<double>> moment_theta_starts(
    const MixedModelData& data, bool binary_response);

}  // namespace decompeval::mixed
