#include "mixed/multi_start.h"

#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace decompeval::mixed {

std::vector<std::vector<double>> multi_start_points(
    const std::vector<double>& x0, std::size_t n_theta,
    const FitOptions& options) {
  DE_EXPECTS(!x0.empty());
  DE_EXPECTS(n_theta <= x0.size());
  DE_EXPECTS(options.n_starts >= 1);
  DE_EXPECTS(options.theta_scale_min > 0.0);
  DE_EXPECTS(options.theta_scale_max >= options.theta_scale_min);

  std::vector<std::vector<double>> starts;
  starts.reserve(static_cast<std::size_t>(options.n_starts) +
                 options.extra_theta_starts.size() +
                 (options.warm_start.empty() ? 0 : 1));
  if (!options.warm_start.empty()) {
    DE_EXPECTS_MSG(options.warm_start.size() == x0.size(),
                   "warm_start has the wrong dimension");
    for (const double v : options.warm_start)
      DE_EXPECTS_MSG(std::isfinite(v), "warm_start has a non-finite entry");
    // Prepended, never substituted: the heuristic start and the whole cold
    // candidate set stay in the search, so the warm winner can only improve
    // on the cold winner (ties resolve to the warm start's lower index).
    starts.push_back(options.warm_start);
  }
  starts.push_back(x0);
  const std::size_t extra = static_cast<std::size_t>(options.n_starts) - 1;
  if (extra > 0) {
    // One stratum permutation per theta dimension makes the scale factors a
    // Latin hypercube: across the K−1 jittered starts every dimension visits
    // every log-uniform stratum exactly once.
    util::Rng base(options.seed);
    std::vector<std::vector<std::size_t>> strata(n_theta);
    for (std::size_t d = 0; d < n_theta; ++d) {
      strata[d].resize(extra);
      std::iota(strata[d].begin(), strata[d].end(), std::size_t{0});
      base.shuffle(strata[d]);
    }

    const double log_lo = std::log(options.theta_scale_min);
    const double log_hi = std::log(options.theta_scale_max);
    for (std::size_t k = 0; k < extra; ++k) {
      // Per-start stream: pure function of (seed, k), so the start list does
      // not depend on how (or whether) other starts are generated.
      util::Rng stream = base.split(k);
      std::vector<double> x = x0;
      for (std::size_t d = 0; d < n_theta; ++d) {
        const double in_stratum = stream.uniform();
        const double frac =
            (static_cast<double>(strata[d][k]) + in_stratum) /
            static_cast<double>(extra);
        const double scale = std::exp(log_lo + frac * (log_hi - log_lo));
        // Heuristic inits use theta = 1; if a caller ever passes 0, fall
        // back to the scale itself rather than pinning the start at 0.
        x[d] = x0[d] != 0.0 ? x0[d] * scale : scale;
      }
      for (std::size_t j = n_theta; j < x.size(); ++j)
        x[j] = x0[j] + options.beta_jitter_sd * stream.normal();
      starts.push_back(std::move(x));
    }
  }
  for (const std::vector<double>& theta : options.extra_theta_starts) {
    DE_EXPECTS_MSG(theta.size() == n_theta,
                   "extra theta start has the wrong dimension");
    std::vector<double> x = x0;
    for (std::size_t d = 0; d < n_theta; ++d) x[d] = theta[d];
    starts.push_back(std::move(x));
  }
  return starts;
}

MultiStartOutcome multi_start_nelder_mead(
    const std::function<
        std::function<double(const std::vector<double>&)>()>& objective_factory,
    const std::vector<double>& x0, std::size_t n_theta,
    const NelderMeadOptions& nm_options, const FitOptions& options) {
  options.deadline.check("multi_start entry");
  const std::vector<std::vector<double>> starts =
      multi_start_points(x0, n_theta, options);

  NelderMeadOptions nm = nm_options;
  nm.deadline = options.deadline;

  // One simplex per start, with per-start failure containment: a start
  // whose objective diverges (NumericalError), whose criterion ends
  // non-finite, or which is hit by the "mixed.start" fault site is
  // quarantined — the value slot holds +inf and the winner search falls
  // through to the next candidate. Only DeadlineExceeded (cooperative
  // cancellation) and logic errors escape the batch; parallel_for rethrows
  // the lowest failing index, so even that path is deterministic.
  struct StartOutcome {
    NelderMeadResult result;
    std::string quarantine_note;  ///< empty = healthy
  };
  // Each start gets a fresh objective instance: stateful objectives (the
  // GLMM warm start) stay private to their simplex, which both avoids data
  // races and keeps every start a pure function of its start vector.
  const std::vector<StartOutcome> results = util::parallel_map(
      options.threads, starts,
      [&](const std::vector<double>& start, std::size_t k) {
        StartOutcome out;
        try {
          if (options.faults != nullptr)
            options.faults->raise_if("mixed.start", k);
          const auto objective = objective_factory();
          out.result = nelder_mead(objective, start, nm);
          if (!std::isfinite(out.result.value))
            out.quarantine_note = "non-finite criterion";
        } catch (const util::FaultError& e) {
          out.quarantine_note = e.what();
        } catch (const NumericalError& e) {
          out.quarantine_note = e.what();
        }
        if (!out.quarantine_note.empty()) {
          out.result = NelderMeadResult{};
          out.result.value = std::numeric_limits<double>::infinity();
        }
        return out;
      });

  MultiStartOutcome out;
  out.report.n_starts = results.size();
  out.report.start_values.reserve(results.size());
  out.report.start_evaluations.reserve(results.size());
  std::size_t best = results.size();
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < results.size(); ++k) {
    const StartOutcome& r = results[k];
    out.report.start_values.push_back(r.result.value);
    out.report.start_evaluations.push_back(r.result.evaluations);
    if (!r.quarantine_note.empty()) {
      out.report.quarantined.push_back(k);
      out.report.quarantine_notes.push_back(r.quarantine_note);
      continue;
    }
    if (std::isfinite(r.result.value) && r.result.value < best_value) {
      best = k;
      best_value = r.result.value;
    }
  }
  // Every start diverging to a non-finite criterion means the model data is
  // degenerate (or a fault plan killed the whole search); surface a
  // structured numerical failure instead of returning garbage.
  if (best >= results.size()) {
    std::string detail = "no Nelder-Mead start reached a finite criterion";
    if (!out.report.quarantine_notes.empty())
      detail += " (first quarantine: " + out.report.quarantine_notes.front() +
                ")";
    throw NumericalError(detail);
  }
  out.report.best_start = best;
  out.best = results[best].result;
  return out;
}

}  // namespace decompeval::mixed
