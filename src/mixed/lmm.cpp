#include "mixed/lmm.h"

#include <cmath>
#include <numbers>
#include <utility>

#include "linalg/matrix.h"
#include "mixed/moment_starts.h"
#include "mixed/nelder_mead.h"
#include "statdist/distributions.h"
#include "util/check.h"

namespace decompeval::mixed {

namespace {

// Builds the bordered penalized-least-squares system for given relative
// covariance factors (theta_u, theta_q). Ordering: users, questions, betas.
struct PlsSystem {
  linalg::Matrix a;
  linalg::Vector rhs;
  std::size_t q;  // number of random-effect columns
};

PlsSystem build_system(const MixedModelData& d, double theta_u,
                       double theta_q) {
  const std::size_t n = d.n_observations();
  const std::size_t p = d.n_fixed_effects();
  const std::size_t q = d.n_users + d.n_questions;
  const std::size_t m = q + p;
  PlsSystem sys{linalg::Matrix(m, m), linalg::Vector(m, 0.0), q};

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cu = d.user[i];
    const std::size_t cq = d.n_users + d.question[i];
    // Random-effect cross products (Z columns are 0/1 indicators).
    sys.a(cu, cu) += theta_u * theta_u;
    sys.a(cq, cq) += theta_q * theta_q;
    sys.a(cu, cq) += theta_u * theta_q;
    sys.a(cq, cu) += theta_u * theta_q;
    for (std::size_t j = 0; j < p; ++j) {
      const double xij = d.x(i, j);
      sys.a(cu, q + j) += theta_u * xij;
      sys.a(q + j, cu) += theta_u * xij;
      sys.a(cq, q + j) += theta_q * xij;
      sys.a(q + j, cq) += theta_q * xij;
      for (std::size_t k = 0; k <= j; ++k) {
        sys.a(q + j, q + k) += xij * d.x(i, k);
        if (k != j) sys.a(q + k, q + j) += xij * d.x(i, k);
      }
      sys.rhs[q + j] += xij * d.y[i];
    }
    sys.rhs[cu] += theta_u * d.y[i];
    sys.rhs[cq] += theta_q * d.y[i];
  }
  for (std::size_t i = 0; i < q; ++i) sys.a(i, i) += 1.0;
  return sys;
}

struct ProfiledSolve {
  linalg::Vector solution;  // [u; beta]
  double penalized_rss = 0.0;
  double logdet_l = 0.0;    // log |L_Z|² (random-effect block)
  double logdet_rx = 0.0;   // log |R_X|² (fixed-effect Schur block)
  linalg::Matrix chol_lower;
};

ProfiledSolve profiled_solve(const MixedModelData& d, double theta_u,
                             double theta_q) {
  const PlsSystem sys = build_system(d, theta_u, theta_q);
  const linalg::Cholesky chol(sys.a);
  ProfiledSolve out;
  out.solution = chol.solve(sys.rhs);
  double yty = 0.0;
  for (const double v : d.y) yty += v * v;
  out.penalized_rss = yty - linalg::dot(out.solution, sys.rhs);
  // Guard against cancellation for near-perfect fits.
  if (out.penalized_rss < 1e-12) out.penalized_rss = 1e-12;
  const linalg::Matrix& l = chol.lower();
  for (std::size_t i = 0; i < sys.q; ++i)
    out.logdet_l += 2.0 * std::log(l(i, i));
  for (std::size_t i = sys.q; i < l.rows(); ++i)
    out.logdet_rx += 2.0 * std::log(l(i, i));
  out.chol_lower = l;
  return out;
}

double reml_criterion(const MixedModelData& d, double theta_u,
                      double theta_q) {
  const double n = static_cast<double>(d.n_observations());
  const double p = static_cast<double>(d.n_fixed_effects());
  const ProfiledSolve s = profiled_solve(d, theta_u, theta_q);
  const double nmp = n - p;
  return s.logdet_l + s.logdet_rx +
         nmp * (1.0 + std::log(2.0 * std::numbers::pi * s.penalized_rss / nmp));
}

}  // namespace

void MixedModelData::validate() const {
  DE_EXPECTS_MSG(x.rows() == y.size(), "X rows must match y length");
  DE_EXPECTS_MSG(user.size() == y.size(), "user index length mismatch");
  DE_EXPECTS_MSG(question.size() == y.size(), "question index length mismatch");
  DE_EXPECTS_MSG(fixed_effect_names.size() == x.cols(),
                 "fixed effect name count mismatch");
  DE_EXPECTS_MSG(n_users >= 2 && n_questions >= 2,
                 "need at least two levels per grouping factor");
  for (const std::size_t u : user) DE_EXPECTS(u < n_users);
  for (const std::size_t q : question) DE_EXPECTS(q < n_questions);
}

LmmFit fit_lmm(const MixedModelData& data, const FitOptions& options) {
  // The deadline gate precedes validation so an already-expired service
  // request costs nothing and touches no model state.
  options.deadline.check("fit_lmm entry");
  data.validate();
  const std::size_t n = data.n_observations();
  const std::size_t p = data.n_fixed_effects();
  DE_EXPECTS_MSG(n > p + 2, "too few observations for the model");

  // The profiled criterion is stateless, so every start can share it.
  const auto objective_factory = [&data]() {
    return [&data](const std::vector<double>& t) {
      return reml_criterion(data, std::abs(t[0]), std::abs(t[1]));
    };
  };
  NelderMeadOptions opts;
  opts.initial_step = 0.5;
  FitOptions search_options = options;
  if (options.moment_starts && options.n_starts > 1) {
    // Candidates n_starts and n_starts + 1: ANOVA method-of-moments thetas.
    for (auto& theta : moment_theta_starts(data, /*binary_response=*/false))
      search_options.extra_theta_starts.push_back(std::move(theta));
  }
  MultiStartOutcome search = multi_start_nelder_mead(
      objective_factory, {1.0, 1.0}, /*n_theta=*/2, opts, search_options);
  const NelderMeadResult& opt = search.best;

  const double theta_u = std::abs(opt.x[0]);
  const double theta_q = std::abs(opt.x[1]);
  const ProfiledSolve s = profiled_solve(data, theta_u, theta_q);

  LmmFit fit;
  fit.converged = opt.converged;
  fit.multi_start = std::move(search.report);
  fit.n_observations = n;
  fit.reml_criterion = opt.value;
  const double nmp = static_cast<double>(n - p);
  const double sigma2 = s.penalized_rss / nmp;
  fit.sigma_residual = std::sqrt(sigma2);
  fit.sigma_user = theta_u * fit.sigma_residual;
  fit.sigma_question = theta_q * fit.sigma_residual;

  const std::size_t q = data.n_users + data.n_questions;
  // Fixed-effect covariance: sigma² (L22 L22ᵀ)⁻¹ from the trailing Cholesky
  // block (the factor of the Schur complement R_Xᵀ R_X).
  linalg::Matrix schur(p, p);
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      double v = 0.0;
      for (std::size_t k = 0; k <= j; ++k)
        v += s.chol_lower(q + i, q + k) * s.chol_lower(q + j, q + k);
      schur(i, j) = v;
      schur(j, i) = v;
    }
  const linalg::Matrix cov_beta = linalg::spd_inverse(schur).scaled(sigma2);

  fit.coefficients.resize(p);
  for (std::size_t j = 0; j < p; ++j) {
    Coefficient& c = fit.coefficients[j];
    c.name = data.fixed_effect_names[j];
    c.estimate = s.solution[q + j];
    c.std_error = std::sqrt(cov_beta(j, j));
    c.z_value = c.estimate / c.std_error;
    c.p_value = 2.0 * (1.0 - statdist::normal_cdf(std::abs(c.z_value)));
  }

  fit.random_user.resize(data.n_users);
  for (std::size_t j = 0; j < data.n_users; ++j)
    fit.random_user[j] = theta_u * s.solution[j];
  fit.random_question.resize(data.n_questions);
  for (std::size_t j = 0; j < data.n_questions; ++j)
    fit.random_question[j] = theta_q * s.solution[data.n_users + j];

  // Nakagawa & Schielzeth R² components.
  linalg::Vector fitted_fixed(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < p; ++j) v += data.x(i, j) * s.solution[q + j];
    fitted_fixed[i] = v;
  }
  double mean_fixed = 0.0;
  for (const double v : fitted_fixed) mean_fixed += v;
  mean_fixed /= static_cast<double>(n);
  double var_fixed = 0.0;
  for (const double v : fitted_fixed)
    var_fixed += (v - mean_fixed) * (v - mean_fixed);
  var_fixed /= static_cast<double>(n);
  const double var_user = fit.sigma_user * fit.sigma_user;
  const double var_question = fit.sigma_question * fit.sigma_question;
  const double total = var_fixed + var_user + var_question + sigma2;
  fit.r2_marginal = var_fixed / total;
  fit.r2_conditional = (var_fixed + var_user + var_question) / total;

  const double n_params = static_cast<double>(p) + 3.0;  // betas + 2 RE + σ
  fit.aic = fit.reml_criterion + 2.0 * n_params;
  fit.bic = fit.reml_criterion + std::log(static_cast<double>(n)) * n_params;
  return fit;
}

std::vector<double> warm_start_from(const LmmFit& fit) {
  // The REML profile optimizes the relative covariance factors; beta and
  // sigma are recovered in closed form, so the vector is theta only. A
  // degenerate previous fit (sigma_residual == 0) has no usable ratios.
  if (fit.sigma_residual <= 0.0) return {};
  return {fit.sigma_user / fit.sigma_residual,
          fit.sigma_question / fit.sigma_residual};
}

}  // namespace decompeval::mixed
