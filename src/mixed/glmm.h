// Logistic generalized linear mixed model with two crossed random
// intercepts, fit by the Laplace approximation — the estimator behind the
// paper's Table I (glmer with family=binomial in R).
//
// Inner loop: penalized iteratively reweighted least squares (PIRLS) finds
// the conditional modes of the spherical random effects u for fixed
// (β, θ). Outer loop: Nelder–Mead minimizes the Laplace deviance
//   −2ℓ ≈ deviance_residual(β, u) + ‖u‖² + log|ΛᵀZᵀWZΛ + I|
// jointly over β and θ = (σ_user, σ_question). Wald standard errors come
// from the numerically differentiated Hessian of the deviance in β.
#pragma once

#include <vector>

#include "mixed/model_data.h"
#include "mixed/multi_start.h"

namespace decompeval::mixed {

struct GlmmFit {
  std::vector<Coefficient> coefficients;
  double sigma_user = 0.0;
  double sigma_question = 0.0;
  double deviance = 0.0;  ///< Laplace −2 log-likelihood at the optimum
  double aic = 0.0;
  double bic = 0.0;
  double r2_marginal = 0.0;     ///< Nakagawa R²m with logit-link residual π²/3
  double r2_conditional = 0.0;  ///< Nakagawa R²c
  std::vector<double> random_user;
  std::vector<double> random_question;
  std::size_t n_observations = 0;
  bool converged = false;
  /// Multi-start diagnostics (n_starts, winning start, per-start deviance).
  MultiStartReport multi_start;
};

/// Fits the logistic GLMM. `data.y` must contain only 0.0 and 1.0.
/// The default options run a deterministic 8-start Nelder–Mead search whose
/// deviance is never worse than the legacy single start
/// (options.n_starts = 1); the result is identical at every thread count.
GlmmFit fit_logistic_glmm(const MixedModelData& data,
                          const FitOptions& options = {});

/// Packs a previous fit into the outer parameter vector
/// [sigma_user, sigma_question, beta...] for FitOptions::warm_start of a
/// later fit_logistic_glmm on related data (same fixed-effect layout).
std::vector<double> warm_start_from(const GlmmFit& fit);

}  // namespace decompeval::mixed
