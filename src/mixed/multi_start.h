// Deterministic multi-start driver for the Nelder–Mead outer optimization
// of both mixed-model fitters.
//
// The Laplace / REML criteria are not convex in the variance-component
// parameters, and a simplex started at the single heuristic point can land
// in a shallow local optimum — which would silently change the paper's
// Table I/II coefficients. The driver therefore launches K independent
// simplex searches: start 0 is exactly the legacy heuristic start (so the
// multi-start winner can never be worse than the single-start fit), and
// starts 1..K−1 jitter around it with a Latin-hypercube spread over the
// variance-component scale plus small Gaussian noise on the fixed effects.
//
// Determinism contract: every start vector is a pure function of
// (FitOptions::seed, start index) via Rng::split, starts are fitted as an
// order-preserving parallel_map batch, and the winner is chosen by
// (criterion value, start index) in index order on the calling thread —
// so the fit is bit-identical at every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mixed/nelder_mead.h"
#include "util/fault.h"

namespace decompeval::mixed {

/// Knobs shared by fit_logistic_glmm and fit_lmm.
struct FitOptions {
  /// Total Nelder–Mead starts including the heuristic start 0. 1 reproduces
  /// the legacy single-start fit exactly.
  int n_starts = 8;
  /// Worker threads for the start fan-out; 0 = hardware concurrency. The
  /// result does not depend on this value.
  std::size_t threads = 0;
  /// Base seed of the start-jitter streams (start k draws from
  /// Rng(seed).split(k)); independent of every simulation seed.
  std::uint64_t seed = 0x5EEDBED5ULL;
  /// Multiplicative Latin-hypercube envelope for the variance-component
  /// coordinates: start k scales each theta by a stratified factor in
  /// [theta_scale_min, theta_scale_max] (log-uniform strata).
  double theta_scale_min = 0.15;
  double theta_scale_max = 4.0;
  /// SD of the additive Gaussian jitter on the non-theta (fixed-effect)
  /// coordinates.
  double beta_jitter_sd = 0.25;
  /// Append method-of-moments theta starts (candidates n_starts and
  /// n_starts + 1, computed by the fitters from a balanced-ANOVA
  /// decomposition of the data — see mixed/moment_starts.h). Ignored when
  /// n_starts == 1, which stays the exact legacy single-start fit.
  bool moment_starts = true;
  /// Extra deterministic starts appended after the jittered ones: each
  /// entry supplies the first n_theta coordinates; the remaining (beta)
  /// coordinates are copied from x0. The fitters fill this with the
  /// moment-based candidates; callers may add their own.
  std::vector<std::vector<double>> extra_theta_starts;
  /// Optional warm start: a full parameter vector (theta coordinates first,
  /// then the fixed effects) carried over from a previous fit on related
  /// data — the streaming engine passes the previous window's winner here.
  /// When non-empty it must match x0.size() and is *prepended* as start 0,
  /// ahead of the heuristic start and every cold candidate. The cold start
  /// set is retained unchanged, so the warm search explores a strict
  /// superset of the cold search and — with ties broken toward the lower
  /// index — its winning criterion is never worse than the cold one.
  std::vector<double> warm_start;
  /// Optional chaos injection: fault site "mixed.start" is evaluated once
  /// per start index (the warm start, when present, shifts the cold
  /// indices up by one). A firing start is quarantined, not fatal.
  const util::FaultInjector* faults = nullptr;
  /// Cooperative cancellation, checked at fit entry and once per
  /// Nelder-Mead iteration. An expired deadline aborts with
  /// DeadlineExceeded before any model state is produced.
  util::Deadline deadline;
};

/// Per-fit diagnostics of the multi-start search.
struct MultiStartReport {
  std::size_t n_starts = 1;
  std::size_t best_start = 0;        ///< index of the winning start
  std::vector<double> start_values;  ///< final criterion per start
  /// Nelder-Mead evaluation count per start (0 for quarantined starts).
  std::vector<int> start_evaluations;
  /// Starts removed from the search: a start is quarantined when its
  /// simplex throws NumericalError, an injected FaultError fires, or the
  /// final criterion is non-finite. The search then falls through to the
  /// next candidate; only when every start is quarantined does the fit
  /// fail (with NumericalError). Parallel arrays, ascending start index.
  std::vector<std::size_t> quarantined;
  std::vector<std::string> quarantine_notes;
};

struct MultiStartOutcome {
  NelderMeadResult best;
  MultiStartReport report;
};

/// Deterministic start points: element 0 is `x0` verbatim; the first
/// `n_theta` coordinates of the others get the Latin-hypercube scale
/// treatment, the rest Gaussian jitter. Entries of
/// `options.extra_theta_starts` are appended after the jittered starts
/// (theta coordinates from the entry, beta coordinates from x0). Pure
/// function of (x0, options).
std::vector<std::vector<double>> multi_start_points(
    const std::vector<double>& x0, std::size_t n_theta,
    const FitOptions& options);

/// Minimizes from every start concurrently and returns the best result.
/// `objective_factory` must produce an independent objective per call —
/// objectives may keep internal state (e.g. the GLMM PIRLS warm start), so
/// concurrent starts must never share one. Winner selection: smallest
/// finite criterion among non-quarantined starts, ties broken by the lower
/// start index. A start that diverges (NumericalError, non-finite
/// criterion) or is hit by an injected fault is quarantined and the search
/// retries with the next candidate; DeadlineExceeded always propagates.
/// Throws NumericalError when every start is quarantined.
MultiStartOutcome multi_start_nelder_mead(
    const std::function<
        std::function<double(const std::vector<double>&)>()>& objective_factory,
    const std::vector<double>& x0, std::size_t n_theta,
    const NelderMeadOptions& nm_options, const FitOptions& options);

}  // namespace decompeval::mixed
