#include "mixed/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace decompeval::mixed {

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& options) {
  DE_EXPECTS(!x0.empty());
  options.deadline.check("nelder_mead entry");
  const std::size_t n = x0.size();

  struct Point {
    std::vector<double> x;
    double value;
  };

  NelderMeadResult result;
  std::vector<Point> simplex;
  simplex.reserve(n + 1);
  simplex.push_back({x0, f(x0)});
  ++result.evaluations;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi = x0;
    xi[i] += options.initial_step != 0.0 ? options.initial_step : 0.5;
    simplex.push_back({xi, f(xi)});
    ++result.evaluations;
  }

  const auto by_value = [](const Point& a, const Point& b) {
    return a.value < b.value;
  };

  while (result.evaluations < options.max_evaluations) {
    options.deadline.check("nelder_mead");
    std::sort(simplex.begin(), simplex.end(), by_value);
    if (std::abs(simplex.back().value - simplex.front().value) <
        options.tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i].x[j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    const Point& worst = simplex.back();
    const auto combine = [&](double t) {
      std::vector<double> x(n);
      for (std::size_t j = 0; j < n; ++j)
        x[j] = centroid[j] + t * (worst.x[j] - centroid[j]);
      return x;
    };

    const std::vector<double> xr = combine(-1.0);  // reflection
    const double fr = f(xr);
    ++result.evaluations;

    if (fr < simplex.front().value) {
      const std::vector<double> xe = combine(-2.0);  // expansion
      const double fe = f(xe);
      ++result.evaluations;
      simplex.back() = fe < fr ? Point{xe, fe} : Point{xr, fr};
    } else if (fr < simplex[n - 1].value) {
      simplex.back() = {xr, fr};
    } else {
      const bool outside = fr < worst.value;
      const std::vector<double> xc = combine(outside ? -0.5 : 0.5);
      const double fc = f(xc);
      ++result.evaluations;
      if (fc < std::min(fr, worst.value)) {
        simplex.back() = {xc, fc};
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 1; i <= n; ++i) {
          for (std::size_t j = 0; j < n; ++j)
            simplex[i].x[j] =
                simplex[0].x[j] + 0.5 * (simplex[i].x[j] - simplex[0].x[j]);
          simplex[i].value = f(simplex[i].x);
          ++result.evaluations;
        }
      }
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_value);
  result.x = simplex.front().x;
  result.value = simplex.front().value;
  return result;
}

}  // namespace decompeval::mixed
