// Linear mixed model with two crossed random intercepts, fit by profiled
// REML — the estimator behind the paper's Table II (lmer in R).
//
// Parameterization follows lme4: relative covariance factors
// θ = (σ_user/σ, σ_question/σ) are optimized by Nelder–Mead over the
// profiled REML criterion; β, u and σ² are profiled out exactly through the
// penalized least-squares system
//   [ΛᵀZᵀZΛ + I   ΛᵀZᵀX] [u]   [ΛᵀZᵀy]
//   [XᵀZΛ          XᵀX ] [β] = [Xᵀy ]
// whose Cholesky factor also yields the log-determinant terms of the
// criterion.
#pragma once

#include <vector>

#include "mixed/model_data.h"
#include "mixed/multi_start.h"

namespace decompeval::mixed {

struct LmmFit {
  std::vector<Coefficient> coefficients;
  double sigma_user = 0.0;      ///< random-intercept SD for users
  double sigma_question = 0.0;  ///< random-intercept SD for questions
  double sigma_residual = 0.0;
  double reml_criterion = 0.0;  ///< −2·(REML log-likelihood)
  double aic = 0.0;
  double bic = 0.0;
  double r2_marginal = 0.0;     ///< Nakagawa R²m (fixed effects only)
  double r2_conditional = 0.0;  ///< Nakagawa R²c (fixed + random)
  std::vector<double> random_user;      ///< BLUPs, length n_users
  std::vector<double> random_question;  ///< BLUPs, length n_questions
  std::size_t n_observations = 0;
  bool converged = false;
  /// Multi-start diagnostics (n_starts, winning start, per-start REML).
  MultiStartReport multi_start;
};

/// Fits the LMM. Requires data.validate() to pass, n > p + 2, and at least
/// two levels in each grouping factor. The default options run a
/// deterministic 8-start Nelder–Mead search over θ whose REML criterion is
/// never worse than the legacy single start (options.n_starts = 1); the
/// result is identical at every thread count.
LmmFit fit_lmm(const MixedModelData& data, const FitOptions& options = {});

/// Packs a previous fit into the outer parameter vector
/// [sigma_user/sigma_residual, sigma_question/sigma_residual] (the REML
/// profile optimizes relative covariance factors only) for
/// FitOptions::warm_start of a later fit_lmm on related data.
std::vector<double> warm_start_from(const LmmFit& fit);

}  // namespace decompeval::mixed
