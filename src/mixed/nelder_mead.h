// Derivative-free simplex minimizer (Nelder–Mead) used as the outer
// optimizer for the REML / Laplace criteria, the same family of optimizer
// lme4 uses by default (Nelder–Mead on the deviance surface).
#pragma once

#include <functional>
#include <vector>

#include "util/fault.h"

namespace decompeval::mixed {

struct NelderMeadOptions {
  double initial_step = 0.5;
  double tolerance = 1e-9;     ///< convergence on criterion spread
  int max_evaluations = 20000;
  /// Cooperative cancellation: checked once per simplex iteration, so a
  /// service request with an expired deadline (or one cancelled by the
  /// watchdog) aborts the fit with DeadlineExceeded within one iteration
  /// instead of hanging until convergence.
  util::Deadline deadline;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Minimizes `f` starting from `x0`.
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& options = {});

}  // namespace decompeval::mixed
