#include "mixed/moment_starts.h"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.h"
#include "util/check.h"

namespace decompeval::mixed {

namespace {

constexpr double kThetaFloor = 0.05;
constexpr double kThetaCeil = 20.0;

double clamp_theta(double v) {
  if (!std::isfinite(v)) return 1.0;
  return std::clamp(v, kThetaFloor, kThetaCeil);
}

// OLS residuals of y on X, with a tiny ridge so a collinear design still
// produces a usable (if slightly biased) adjustment.
linalg::Vector ols_residuals(const MixedModelData& d) {
  const std::size_t n = d.n_observations();
  const std::size_t p = d.n_fixed_effects();
  linalg::Matrix xtx(p, p);
  linalg::Vector xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < p; ++j) {
      const double xij = d.x(i, j);
      xty[j] += xij * d.y[i];
      for (std::size_t k = 0; k <= j; ++k) {
        xtx(j, k) += xij * d.x(i, k);
        if (k != j) xtx(k, j) += xij * d.x(i, k);
      }
    }
  linalg::Vector beta;
  try {
    beta = linalg::Cholesky(xtx).solve(xty);
  } catch (const NumericalError&) {
    xtx.add_diagonal(1e-8 * (1.0 + xtx(0, 0)));
    beta = linalg::Cholesky(xtx).solve(xty);
  }
  linalg::Vector r(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double fitted = 0.0;
    for (std::size_t j = 0; j < p; ++j) fitted += d.x(i, j) * beta[j];
    r[i] = d.y[i] - fitted;
  }
  return r;
}

struct VarianceComponents {
  double var_user = 0.0;
  double var_question = 0.0;
  double var_residual = 1.0;
};

// Two-way unweighted-means ANOVA on the user x question cell-mean table.
// With one observation per cell (the study design) this is exactly the
// balanced decomposition; replicated or missing cells degrade it into an
// approximation, which is all a starting point needs.
VarianceComponents anova_components(const MixedModelData& d,
                                    const linalg::Vector& r) {
  const std::size_t a = d.n_users;
  const std::size_t b = d.n_questions;
  VarianceComponents out;
  if (a < 2 || b < 2) return out;

  // Cell means (sparse accumulation over observed cells).
  std::vector<double> cell_sum(a * b, 0.0);
  std::vector<double> cell_n(a * b, 0.0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    const std::size_t c = d.user[i] * b + d.question[i];
    cell_sum[c] += r[i];
    cell_n[c] += 1.0;
  }

  std::vector<double> row_sum(a, 0.0), row_n(a, 0.0);
  std::vector<double> col_sum(b, 0.0), col_n(b, 0.0);
  double grand_sum = 0.0, grand_n = 0.0;
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b; ++j) {
      const std::size_t c = i * b + j;
      if (cell_n[c] == 0.0) continue;
      const double mean = cell_sum[c] / cell_n[c];
      row_sum[i] += mean;
      row_n[i] += 1.0;
      col_sum[j] += mean;
      col_n[j] += 1.0;
      grand_sum += mean;
      grand_n += 1.0;
    }
  if (grand_n < 4.0) return out;
  const double grand = grand_sum / grand_n;

  std::vector<double> row_mean(a, grand), col_mean(b, grand);
  for (std::size_t i = 0; i < a; ++i)
    if (row_n[i] > 0.0) row_mean[i] = row_sum[i] / row_n[i];
  for (std::size_t j = 0; j < b; ++j)
    if (col_n[j] > 0.0) col_mean[j] = col_sum[j] / col_n[j];

  double ssa = 0.0, ssb = 0.0, sse = 0.0;
  for (std::size_t i = 0; i < a; ++i)
    ssa += (row_mean[i] - grand) * (row_mean[i] - grand);
  for (std::size_t j = 0; j < b; ++j)
    ssb += (col_mean[j] - grand) * (col_mean[j] - grand);
  for (std::size_t i = 0; i < a; ++i)
    for (std::size_t j = 0; j < b; ++j) {
      const std::size_t c = i * b + j;
      if (cell_n[c] == 0.0) continue;
      const double resid =
          cell_sum[c] / cell_n[c] - row_mean[i] - col_mean[j] + grand;
      sse += resid * resid;
    }

  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  const double msa = db * ssa / (da - 1.0);
  const double msb = da * ssb / (db - 1.0);
  const double mse = sse / ((da - 1.0) * (db - 1.0));

  out.var_residual = std::max(mse, 1e-12);
  out.var_user = std::max((msa - mse) / db, 0.0);
  out.var_question = std::max((msb - mse) / da, 0.0);
  return out;
}

}  // namespace

std::vector<std::vector<double>> moment_theta_starts(
    const MixedModelData& data, bool binary_response) {
  const linalg::Vector r = ols_residuals(data);
  const VarianceComponents vc = anova_components(data, r);

  double theta_u, theta_q;
  if (binary_response) {
    // GLMM thetas live on the logit scale. The ANOVA ran on the 0/1
    // probability scale, so rescale by the inverse logistic derivative at
    // the marginal rate: d logit(p)/dp = 1 / (p (1 - p)).
    double ybar = 0.0;
    for (const double v : data.y) ybar += v;
    ybar /= static_cast<double>(data.n_observations());
    const double deriv = std::max(ybar * (1.0 - ybar), 0.05);
    theta_u = clamp_theta(std::sqrt(vc.var_user) / deriv);
    theta_q = clamp_theta(std::sqrt(vc.var_question) / deriv);
  } else {
    // LMM thetas are relative factors sigma_component / sigma_residual.
    const double sigma_e = std::sqrt(vc.var_residual);
    theta_u = clamp_theta(std::sqrt(vc.var_user) / sigma_e);
    theta_q = clamp_theta(std::sqrt(vc.var_question) / sigma_e);
  }

  return {{theta_u, theta_q},
          {clamp_theta(std::sqrt(theta_u)), clamp_theta(std::sqrt(theta_q))}};
}

}  // namespace decompeval::mixed
