// Plain-text table and chart primitives used by the replication report.
#pragma once

#include <string>
#include <vector>

namespace decompeval::report {

/// Column-aligned text table with a title and optional footnote.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void add_separator();
  void set_footnote(std::string footnote) { footnote_ = std::move(footnote); }

  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::string footnote_;
};

/// Horizontal bar chart over labeled counts.
std::string bar_chart(const std::string& title,
                      const std::vector<std::pair<std::string, double>>& bars,
                      int width = 40);

/// Two-series grouped percentage bars (Fig. 5 style): each entry renders
/// the DIRTY and Hex-Rays percentages side by side.
struct GroupedBar {
  std::string label;
  double dirty_value = 0.0;
  double hexrays_value = 0.0;
};
std::string grouped_bar_chart(const std::string& title,
                              const std::vector<GroupedBar>& bars,
                              const std::string& value_suffix = "%",
                              int width = 30);

/// Diverging Likert chart (Fig. 8 style): five ordered category counts per
/// row, rendered as a signed percentage bar around the neutral midpoint.
struct LikertRow {
  std::string label;
  std::vector<double> counts;  ///< best → worst, five entries
};
std::string likert_chart(const std::string& title,
                         const std::vector<LikertRow>& rows,
                         const std::vector<std::string>& level_labels);

}  // namespace decompeval::report
