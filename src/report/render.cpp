#include "report/render.h"

#include <cmath>
#include <sstream>

#include "report/table.h"
#include "util/strings.h"

namespace decompeval::report {

namespace {

using util::format_fixed;
using util::format_p_value;

std::string pm(double estimate, double se, int digits = 3) {
  return format_fixed(estimate, digits) + " +/- " + format_fixed(se, digits);
}

std::string star(double p) { return p < 0.05 ? "*" : ""; }

std::string arrow(double rho) {
  if (rho > 0.02) return "up";
  if (rho < -0.02) return "down";
  return "flat";
}

void add_coefficients(TextTable& table,
                      const std::vector<mixed::Coefficient>& coefficients) {
  for (const auto& c : coefficients) {
    const std::string name = c.name == "(Intercept)" ? "Constant" : c.name;
    table.add_row({name, pm(c.estimate, c.std_error),
                   format_p_value(c.p_value) + star(c.p_value)});
  }
}

}  // namespace

std::string render_table1(const analysis::CorrectnessModelResult& result) {
  TextTable t("TABLE I: GLMER Correctness Performance Model");
  t.set_header({"Term", "Estimate", "p"});
  add_coefficients(t, result.fit.coefficients);
  t.add_separator();
  t.add_row({"Observations", std::to_string(result.n_observations), ""});
  t.add_row({"Num Users", std::to_string(result.n_users), ""});
  t.add_row({"Num Questions", std::to_string(result.n_questions), ""});
  t.add_row({"sigma(Users)", format_fixed(result.fit.sigma_user, 2), ""});
  t.add_row({"sigma(Questions)", format_fixed(result.fit.sigma_question, 2), ""});
  t.add_row({"R2m", format_fixed(result.fit.r2_marginal, 3), ""});
  t.add_row({"R2c", format_fixed(result.fit.r2_conditional, 3), ""});
  t.add_row({"Akaike Inf. Crit.", format_fixed(result.fit.aic, 3), ""});
  t.add_row({"Bayesian Inf. Crit.", format_fixed(result.fit.bic, 3), ""});
  t.set_footnote("Logistic GLMM, Laplace approximation; * p < 0.05.");
  return t.render();
}

std::string render_table2(const analysis::TimingModelResult& result) {
  TextTable t("TABLE II: LMER Timing Performance Model");
  t.set_header({"Term", "Estimate", "p"});
  add_coefficients(t, result.fit.coefficients);
  t.add_separator();
  t.add_row({"Observations", std::to_string(result.n_observations), ""});
  t.add_row({"Num Users", std::to_string(result.n_users), ""});
  t.add_row({"Num Questions", std::to_string(result.n_questions), ""});
  t.add_row({"sigma(Users)", format_fixed(result.fit.sigma_user, 2), ""});
  t.add_row({"sigma(Questions)", format_fixed(result.fit.sigma_question, 2), ""});
  t.add_row({"sigma(Residual)", format_fixed(result.fit.sigma_residual, 2), ""});
  t.add_row({"R2m", format_fixed(result.fit.r2_marginal, 3), ""});
  t.add_row({"R2c", format_fixed(result.fit.r2_conditional, 3), ""});
  t.add_row({"Akaike Inf. Crit.", format_fixed(result.fit.aic, 3), ""});
  t.add_row({"Bayesian Inf. Crit.", format_fixed(result.fit.bic, 3), ""});
  t.set_footnote("Linear mixed model fit by REML; * p < 0.05.");
  return t.render();
}

namespace {
std::string render_metric_table(const analysis::MetricAnalysis& result,
                                bool vs_time) {
  TextTable t(vs_time
                  ? "TABLE III: Correlation Between Similarity Metrics and "
                    "Participant Time Taken on DIRTY Annotated Code Snippets"
                  : "TABLE IV: Correlation Between Similarity Metrics and "
                    "Participant Correctness on DIRTY Annotated Code Snippets");
  t.set_header({"Similarity Metric", "Trend", "rho", "p-value"});
  const auto add = [&](const analysis::MetricCorrelationRow& row) {
    const stats::CorrelationResult& c =
        vs_time ? row.vs_time : row.vs_correctness;
    if (std::isnan(c.estimate)) {
      // Constant metric column: rank correlation undefined.
      t.add_row({row.metric, "-", "n/a", "n/a"});
      return;
    }
    t.add_row({row.metric, arrow(c.estimate), format_fixed(c.estimate, 4),
               format_p_value(c.p_value) + star(c.p_value)});
  };
  for (const auto& row : result.rows) add(row);
  add(result.levenshtein);
  if (!result.static_rows.empty()) {
    // Static-complexity family of the read (DIRTY) code — structural
    // predictors, not similarity metrics, so set off below the rule.
    t.add_separator();
    for (const auto& row : result.static_rows) add(row);
  }
  std::ostringstream note;
  note << "n(time) = " << result.n_time_observations
       << ", n(correctness) = " << result.n_correctness_observations
       << "; Levenshtein is a distance (sign flips); mean raw distance "
       << format_fixed(result.mean_raw_levenshtein, 1)
       << " (normalized " << format_fixed(result.mean_normalized_levenshtein, 2)
       << ") - the paper deems it unsuitable here. Expert-panel ordinal "
          "Krippendorff alpha = "
       << format_fixed(result.krippendorff_alpha, 3) << ".";
  t.set_footnote(note.str());
  return t.render();
}
}  // namespace

std::string render_table3(const analysis::MetricAnalysis& result) {
  return render_metric_table(result, /*vs_time=*/true);
}

std::string render_table4(const analysis::MetricAnalysis& result) {
  return render_metric_table(result, /*vs_time=*/false);
}

std::string render_figure3(const analysis::DemographicsFigure& figure) {
  std::ostringstream os;
  os << "FIGURE 3: Participant demographics (n = " << figure.n_participants
     << " after exclusions)\n\n";
  std::vector<std::pair<std::string, double>> age_bars, gender_bars;
  for (const auto& [label, count] : figure.age_counts)
    age_bars.emplace_back(label, static_cast<double>(count));
  for (const auto& [label, count] : figure.gender_counts)
    gender_bars.emplace_back(label, static_cast<double>(count));
  os << bar_chart("Age Group", age_bars) << '\n';
  os << bar_chart("Gender", gender_bars) << '\n';
  os << "Education Level (by occupation)\n";
  for (const auto& [education, by_occupation] : figure.education_counts) {
    std::size_t total = 0;
    os << "  " << education << ": ";
    bool first = true;
    for (const auto& [occupation, count] : by_occupation) {
      if (!first) os << ", ";
      os << occupation << " " << count;
      total += count;
      first = false;
    }
    os << "  (total " << total << ")\n";
  }
  return os.str();
}

std::string render_figure5(
    const std::vector<analysis::QuestionCorrectness>& questions) {
  std::vector<GroupedBar> bars;
  bars.reserve(questions.size());
  std::ostringstream notes;
  for (const auto& q : questions) {
    GroupedBar b;
    b.label = q.question_id;
    b.dirty_value = q.rate_dirty() * 100.0;
    b.hexrays_value = q.rate_hexrays() * 100.0;
    bars.push_back(b);
    const auto fisher = q.fisher();
    if (fisher.p_value < 0.05) {
      notes << "  Fisher's exact test on " << q.question_id
            << ": p = " << util::format_p_value(fisher.p_value)
            << " (significant treatment difference)\n";
    }
  }
  std::string out = grouped_bar_chart(
      "FIGURE 5: Percent correct per question, by treatment", bars);
  const std::string note_text = notes.str();
  if (!note_text.empty()) out += note_text;
  return out;
}

namespace {
std::string render_timing(const std::string& figure_title,
                          const analysis::TimingComparison& timing) {
  std::ostringstream os;
  os << figure_title << '\n';
  const auto box = [&](const char* label,
                       const stats::FiveNumberSummary& s,
                       std::size_t n) {
    os << "  " << label << " (n=" << n << "): min "
       << format_fixed(s.min, 0) << "s, Q1 " << format_fixed(s.q1, 0)
       << "s, median " << format_fixed(s.median, 0) << "s, Q3 "
       << format_fixed(s.q3, 0) << "s, max " << format_fixed(s.max, 0)
       << "s\n";
  };
  box("Hex-Rays", timing.summary_hexrays, timing.seconds_hexrays.size());
  box("DIRTY   ", timing.summary_dirty, timing.seconds_dirty.size());
  os << "  Welch two-sample t-test: mean(Hex-Rays) = "
     << format_fixed(timing.welch.mean_x, 1) << "s, mean(DIRTY) = "
     << format_fixed(timing.welch.mean_y, 1)
     << "s, t = " << format_fixed(timing.welch.t, 3)
     << ", df = " << format_fixed(timing.welch.df, 1)
     << ", p = " << format_p_value(timing.welch.p_value) << '\n';
  return os.str();
}
}  // namespace

std::string render_figure6(const analysis::TimingComparison& timing) {
  return render_timing(
      "FIGURE 6: Completion time for " + timing.label + " tasks", timing);
}

std::string render_figure7(const analysis::TimingComparison& timing) {
  return render_timing(
      "FIGURE 7: Completion time for " + timing.label, timing);
}

std::string render_figure8(const analysis::OpinionAnalysis& opinions) {
  const auto to_counts = [](const analysis::LikertCounts& c) {
    return std::vector<double>(c.begin(), c.end());
  };
  const auto& label_array = analysis::likert_labels();
  std::vector<std::string> labels(label_array.begin(), label_array.end());
  std::vector<LikertRow> rows = {
      {"Type / Hex-Rays", to_counts(opinions.type_hexrays)},
      {"Type / DIRTY   ", to_counts(opinions.type_dirty)},
      {"Name / Hex-Rays", to_counts(opinions.name_hexrays)},
      {"Name / DIRTY   ", to_counts(opinions.name_dirty)},
  };
  std::string out = likert_chart(
      "FIGURE 8: Opinion of how types and names impacted understanding",
      rows, labels);
  std::ostringstream os;
  os << out;
  os << "  Names, Hex-Rays vs DIRTY Wilcoxon: W = "
     << format_fixed(opinions.name_test.w, 1)
     << ", p = " << format_p_value(opinions.name_test.p_value)
     << ", location shift = "
     << format_fixed(opinions.name_test.location_shift, 1) << '\n';
  os << "  Types, Hex-Rays vs DIRTY Wilcoxon: W = "
     << format_fixed(opinions.type_test.w, 1)
     << ", p = " << format_p_value(opinions.type_test.p_value) << '\n';
  os << "  Mean type rating per snippet (lower = better):\n";
  for (const auto& [sid, mean_hex] : opinions.type_mean_hexrays) {
    const auto it = opinions.type_mean_dirty.find(sid);
    os << "    " << sid << ": Hex-Rays " << format_fixed(mean_hex, 2)
       << ", DIRTY "
       << (it != opinions.type_mean_dirty.end() ? format_fixed(it->second, 2)
                                                : std::string("n/a"))
       << '\n';
  }
  return os.str();
}

std::string render_rq4(const analysis::PerceptionAnalysis& perception) {
  std::ostringstream os;
  os << "RQ4: Users' perception vs performance (DIRTY responses, n = "
     << perception.n_joined << ")\n";
  os << "  Spearman type rating vs correctness:  rho = "
     << format_fixed(perception.type_rating_vs_correctness.estimate, 4)
     << ", p = "
     << format_p_value(perception.type_rating_vs_correctness.p_value)
     << star(perception.type_rating_vs_correctness.p_value) << '\n';
  os << "  Spearman name rating vs correctness:  rho = "
     << format_fixed(perception.name_rating_vs_correctness.estimate, 4)
     << ", p = "
     << format_p_value(perception.name_rating_vs_correctness.p_value)
     << star(perception.name_rating_vs_correctness.p_value) << '\n';
  os << "  Trust analysis (ratings of incorrect vs correct responders): "
     << "mean rating correct = "
     << format_fixed(perception.mean_rating_when_correct, 2)
     << ", incorrect = "
     << format_fixed(perception.mean_rating_when_incorrect, 2)
     << ", Wilcoxon p = " << format_p_value(perception.trust_test.p_value)
     << star(perception.trust_test.p_value) << '\n';
  os << "  twos_complement narrative: correct rate DIRTY "
     << format_fixed(perception.tc.correct_rate_dirty * 100.0, 1)
     << "% vs Hex-Rays "
     << format_fixed(perception.tc.correct_rate_hexrays * 100.0, 1)
     << "%; mean time-to-correct DIRTY "
     << format_fixed(perception.tc.mean_seconds_correct_dirty, 0)
     << "s vs Hex-Rays "
     << format_fixed(perception.tc.mean_seconds_correct_hexrays, 0)
     << "s; poor type ratings DIRTY "
     << format_fixed(perception.tc.poor_type_share_dirty * 100.0, 1)
     << "% vs Hex-Rays "
     << format_fixed(perception.tc.poor_type_share_hexrays * 100.0, 1)
     << "%\n";
  return os.str();
}

}  // namespace decompeval::report
