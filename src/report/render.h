// Renders each analysis result into the text form of the paper's tables
// and figures.
#pragma once

#include <string>

#include "analysis/figures.h"
#include "analysis/rq1_correctness.h"
#include "analysis/rq2_timing.h"
#include "analysis/rq3_opinions.h"
#include "analysis/rq4_perception.h"
#include "analysis/rq5_metrics.h"

namespace decompeval::report {

std::string render_table1(const analysis::CorrectnessModelResult& result);
std::string render_table2(const analysis::TimingModelResult& result);
std::string render_table3(const analysis::MetricAnalysis& result);
std::string render_table4(const analysis::MetricAnalysis& result);
std::string render_figure3(const analysis::DemographicsFigure& figure);
std::string render_figure5(
    const std::vector<analysis::QuestionCorrectness>& questions);
std::string render_figure6(const analysis::TimingComparison& timing);
std::string render_figure7(const analysis::TimingComparison& timing);
std::string render_figure8(const analysis::OpinionAnalysis& opinions);
std::string render_rq4(const analysis::PerceptionAnalysis& perception);

}  // namespace decompeval::report
