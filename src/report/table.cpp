#include "report/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace decompeval::report {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back({std::move(row), false});
}

void TextTable::add_separator() { rows_.push_back({{}, true}); }

std::string TextTable::render() const {
  // Compute column widths over header and all rows.
  std::size_t n_cols = header_.size();
  for (const Row& r : rows_) n_cols = std::max(n_cols, r.cells.size());
  std::vector<std::size_t> widths(n_cols, 0);
  const auto widen = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const Row& r : rows_)
    if (!r.separator) widen(r.cells);

  std::size_t total = n_cols > 0 ? (n_cols - 1) * 3 : 0;
  for (const std::size_t w : widths) total += w;

  std::ostringstream os;
  os << title_ << '\n' << std::string(std::max(total, title_.size()), '=')
     << '\n';
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << " | ";
      os << cells[i]
         << std::string(widths[i] - std::min(widths[i], cells[i].size()), ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const Row& r : rows_) {
    if (r.separator)
      os << std::string(total, '-') << '\n';
    else
      emit(r.cells);
  }
  if (!footnote_.empty()) os << "Note: " << footnote_ << '\n';
  return os.str();
}

std::string bar_chart(const std::string& title,
                      const std::vector<std::pair<std::string, double>>& bars,
                      int width) {
  DE_EXPECTS(width > 0);
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream os;
  os << title << '\n';
  for (const auto& [label, value] : bars) {
    const int len = max_value > 0.0
                        ? static_cast<int>(std::round(value / max_value * width))
                        : 0;
    os << "  " << label << std::string(label_width - label.size(), ' ')
       << " | " << std::string(len, '#') << ' '
       << util::format_fixed(value, value == std::floor(value) ? 0 : 1)
       << '\n';
  }
  return os.str();
}

std::string grouped_bar_chart(const std::string& title,
                              const std::vector<GroupedBar>& bars,
                              const std::string& value_suffix, int width) {
  DE_EXPECTS(width > 0);
  double max_value = 1e-9;
  std::size_t label_width = 0;
  for (const GroupedBar& b : bars) {
    max_value = std::max({max_value, b.dirty_value, b.hexrays_value});
    label_width = std::max(label_width, b.label.size());
  }
  std::ostringstream os;
  os << title << '\n';
  for (const GroupedBar& b : bars) {
    const auto bar_of = [&](double v, char fill) {
      return std::string(
          static_cast<std::size_t>(std::round(v / max_value * width)), fill);
    };
    os << "  " << b.label << std::string(label_width - b.label.size(), ' ')
       << "  DIRTY    | " << bar_of(b.dirty_value, '#') << ' '
       << util::format_fixed(b.dirty_value, 1) << value_suffix << '\n';
    os << "  " << std::string(label_width, ' ') << "  Hex-Rays | "
       << bar_of(b.hexrays_value, '=') << ' '
       << util::format_fixed(b.hexrays_value, 1) << value_suffix << '\n';
  }
  return os.str();
}

std::string likert_chart(const std::string& title,
                         const std::vector<LikertRow>& rows,
                         const std::vector<std::string>& level_labels) {
  std::ostringstream os;
  os << title << '\n';
  os << "  (each cell: % of responses; levels best -> worst: ";
  for (std::size_t i = 0; i < level_labels.size(); ++i) {
    if (i > 0) os << " / ";
    os << level_labels[i];
  }
  os << ")\n";
  std::size_t label_width = 0;
  for (const LikertRow& r : rows) label_width = std::max(label_width, r.label.size());
  static const char kGlyphs[] = {'+', '-', '.', 'x', 'X'};
  for (const LikertRow& r : rows) {
    DE_EXPECTS(r.counts.size() == 5);
    double total = 0.0;
    for (const double c : r.counts) total += c;
    os << "  " << r.label << std::string(label_width - r.label.size(), ' ')
       << " |";
    for (std::size_t level = 0; level < 5; ++level) {
      const double pct = total > 0.0 ? r.counts[level] / total * 100.0 : 0.0;
      const int len = static_cast<int>(std::round(pct / 100.0 * 50.0));
      os << std::string(len, kGlyphs[level]);
    }
    os << "|";
    for (std::size_t level = 0; level < 5; ++level) {
      const double pct = total > 0.0 ? r.counts[level] / total * 100.0 : 0.0;
      os << ' ' << util::format_fixed(pct, 0) << '%';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace decompeval::report
