// Token definitions for the mini-C lexer.
#pragma once

#include <string>
#include <vector>

#include "lang/source_span.h"

namespace decompeval::lang {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kCharLiteral,
  kPunct,      // operators and punctuation, text holds the spelling
  kEndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;
  SourceSpan span;  // [begin, end) byte range + 1-based line/col of begin

  bool is(TokenKind k) const { return kind == k; }
  bool is_punct(const char* spelling) const {
    return kind == TokenKind::kPunct && text == spelling;
  }
  bool is_identifier(const char* name) const {
    return kind == TokenKind::kIdentifier && text == name;
  }
};

}  // namespace decompeval::lang
