#include "lang/passes.h"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace decompeval::lang {

namespace {

// Reverse postorder over the blocks reachable from the entry.
std::vector<std::size_t> reverse_postorder(const Cfg& cfg) {
  std::vector<std::size_t> order;
  std::vector<char> seen(cfg.blocks.size(), 0);
  struct Frame {
    std::size_t block;
    std::size_t next_succ;
  };
  std::vector<Frame> stack;
  stack.push_back({cfg.entry, 0});
  seen[cfg.entry] = 1;
  while (!stack.empty()) {
    const Frame f = stack.back();
    const auto& succs = cfg.blocks[f.block].succs;
    if (f.next_succ < succs.size()) {
      ++stack.back().next_succ;
      const std::size_t s = succs[f.next_succ];
      if (!seen[s]) {
        seen[s] = 1;
        stack.push_back({s, 0});
      }
    } else {
      order.push_back(f.block);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

bool DominatorTree::dominates(std::size_t a, std::size_t b) const {
  if (a >= idom.size() || b >= idom.size()) return false;
  if (depth[a] < 0 || depth[b] < 0) return false;
  while (depth[b] > depth[a]) b = idom[b];
  return a == b;
}

DominatorTree compute_dominators(const Cfg& cfg) {
  DominatorTree tree;
  const std::size_t n = cfg.blocks.size();
  tree.idom.assign(n, kNoBlock);
  tree.depth.assign(n, -1);
  if (n == 0) return tree;

  const std::vector<std::size_t> rpo = reverse_postorder(cfg);
  std::vector<std::size_t> rpo_num(n, kNoBlock);
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_num[rpo[i]] = i;

  tree.idom[cfg.entry] = cfg.entry;
  const auto intersect = [&](std::size_t a, std::size_t b) {
    while (a != b) {
      while (rpo_num[a] > rpo_num[b]) a = tree.idom[a];
      while (rpo_num[b] > rpo_num[a]) b = tree.idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::size_t b : rpo) {
      if (b == cfg.entry) continue;
      std::size_t new_idom = kNoBlock;
      for (const std::size_t p : cfg.blocks[b].preds) {
        if (rpo_num[p] == kNoBlock) continue;          // unreachable pred
        if (tree.idom[p] == kNoBlock) continue;        // not yet processed
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && tree.idom[b] != new_idom) {
        tree.idom[b] = new_idom;
        changed = true;
      }
    }
  }

  tree.depth[cfg.entry] = 0;
  for (const std::size_t b : rpo) {
    if (b == cfg.entry) continue;
    if (tree.idom[b] != kNoBlock) tree.depth[b] = tree.depth[tree.idom[b]] + 1;
    tree.height = std::max(tree.height, tree.depth[b]);
  }
  return tree;
}

std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg,
                                            const DominatorTree& dom) {
  std::vector<NaturalLoop> loops;
  for (std::size_t t = 0; t < cfg.blocks.size(); ++t) {
    if (t < cfg.reachable.size() && !cfg.reachable[t]) continue;
    for (const std::size_t h : cfg.blocks[t].succs) {
      if (!dom.dominates(h, t)) continue;  // not a back edge
      NaturalLoop loop;
      loop.header = h;
      loop.latch = t;
      std::set<std::size_t> body = {h};
      std::vector<std::size_t> work;
      if (body.insert(t).second || t == h) work.push_back(t);
      while (!work.empty()) {
        const std::size_t b = work.back();
        work.pop_back();
        if (b == h) continue;
        for (const std::size_t p : cfg.blocks[b].preds) {
          if (p < cfg.reachable.size() && !cfg.reachable[p]) continue;
          if (body.insert(p).second) work.push_back(p);
        }
      }
      loop.blocks.assign(body.begin(), body.end());
      loops.push_back(std::move(loop));
    }
  }
  std::sort(loops.begin(), loops.end(),
            [](const NaturalLoop& a, const NaturalLoop& b) {
              return std::tie(a.header, a.latch) < std::tie(b.header, b.latch);
            });
  return loops;
}

// ---- SCCP -----------------------------------------------------------------

namespace {

struct LatticeValue {
  enum Kind { kTop, kConst, kBottom } kind = kTop;
  long long value = 0;

  static LatticeValue top() { return {}; }
  static LatticeValue constant(long long v) { return {kConst, v}; }
  static LatticeValue bottom() { return {kBottom, 0}; }
  bool is_const() const { return kind == kConst; }

  bool operator==(const LatticeValue&) const = default;
};

LatticeValue join(const LatticeValue& a, const LatticeValue& b) {
  if (a.kind == LatticeValue::kTop) return b;
  if (b.kind == LatticeValue::kTop) return a;
  if (a.kind == LatticeValue::kConst && b.kind == LatticeValue::kConst &&
      a.value == b.value)
    return a;
  return LatticeValue::bottom();
}

std::optional<long long> parse_int_literal(const std::string& text) {
  if (text.empty()) return std::nullopt;
  if (text.find('.') != std::string::npos) return std::nullopt;  // float
  std::string digits = text;
  while (!digits.empty()) {
    const char c = digits.back();
    if (c == 'l' || c == 'L' || c == 'u' || c == 'U' || c == 'f' || c == 'F') {
      // 'f'/'F' are valid hex digits; only strip them as suffixes of
      // decimal spellings.
      if ((c == 'f' || c == 'F') &&
          digits.size() > 1 && (digits[1] == 'x' || digits[1] == 'X'))
        break;
      digits.pop_back();
      continue;
    }
    break;
  }
  if (digits.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(digits.c_str(), &end, 0);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

// Wrap-safe signed arithmetic via unsigned intermediates.
long long wrap_add(long long a, long long b) {
  return static_cast<long long>(static_cast<unsigned long long>(a) +
                                static_cast<unsigned long long>(b));
}
long long wrap_sub(long long a, long long b) {
  return static_cast<long long>(static_cast<unsigned long long>(a) -
                                static_cast<unsigned long long>(b));
}
long long wrap_mul(long long a, long long b) {
  return static_cast<long long>(static_cast<unsigned long long>(a) *
                                static_cast<unsigned long long>(b));
}
long long wrap_neg(long long a) {
  return static_cast<long long>(-static_cast<unsigned long long>(a));
}

class SccpEngine {
 public:
  SccpResult run(const Function& fn, const Cfg& cfg) {
    collect_variables(fn, cfg);
    const std::size_t n_blocks = cfg.blocks.size();
    edge_exec_.resize(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b)
      edge_exec_[b].assign(cfg.blocks[b].succs.size(), false);
    out_env_.assign(n_blocks, Env(names_.size(), LatticeValue::top()));

    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (!block_executable(cfg, b)) continue;
        Env in = entry_env(cfg, b);
        LatticeValue cond_value = LatticeValue::bottom();
        transfer(cfg, b, in, &cond_value);
        if (in != out_env_[b]) {
          out_env_[b] = in;
          changed = true;
        }
        changed |= update_edges(cfg, b, cond_value);
      }
    }

    SccpResult result;
    result.executable.assign(n_blocks, false);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      if (!block_executable(cfg, b)) continue;
      result.executable[b] = true;
      const Expr* cond = cfg.blocks[b].condition;
      if (cond == nullptr) continue;
      Env in = entry_env(cfg, b);
      LatticeValue cond_value = LatticeValue::bottom();
      transfer(cfg, b, in, &cond_value);
      if (cond_value.is_const()) {
        const bool literal = cond->kind == ExprKind::kNumber ||
                             cond->kind == ExprKind::kCharLiteral;
        result.constant_branches.push_back(
            {b, cond, cond_value.value != 0, literal});
      }
    }
    return result;
  }

 private:
  using Env = std::vector<LatticeValue>;

  void collect_variables(const Function& fn, const Cfg& cfg) {
    // Address-taken variables can change behind SCCP's back: never track.
    std::set<std::string> address_taken;
    collect_address_taken(fn, address_taken);
    const auto add = [&](const std::string& name, bool param) {
      if (name.empty() || var_ids_.count(name)) return;
      if (address_taken.count(name)) return;
      var_ids_[name] = names_.size();
      names_.push_back(name);
      is_param_.push_back(param);
    };
    for (const auto& p : fn.params) add(p.name, true);
    for (const auto& block : cfg.blocks)
      for (const auto& item : block.items)
        if (item.kind == CfgItemKind::kDecl) add(item.decl->name, false);
  }

  static void collect_address_taken_expr(const Expr& e,
                                         std::set<std::string>& out) {
    if (e.kind == ExprKind::kUnary && e.text == "&" &&
        e.children[0]->kind == ExprKind::kIdentifier)
      out.insert(e.children[0]->text);
    for (const auto& c : e.children)
      if (c) collect_address_taken_expr(*c, out);
  }
  static void collect_address_taken_stmt(const Stmt& s,
                                         std::set<std::string>& out) {
    for (const auto& d : s.decls)
      if (d.init) collect_address_taken_expr(*d.init, out);
    for (const auto& e : s.exprs)
      if (e) collect_address_taken_expr(*e, out);
    for (const auto& b : s.body)
      if (b) collect_address_taken_stmt(*b, out);
  }
  static void collect_address_taken(const Function& fn,
                                    std::set<std::string>& out) {
    if (fn.body) collect_address_taken_stmt(*fn.body, out);
  }

  int lookup(const std::string& name) const {
    const auto it = var_ids_.find(name);
    return it == var_ids_.end() ? -1 : static_cast<int>(it->second);
  }

  bool block_executable(const Cfg& cfg, std::size_t b) const {
    if (b == cfg.entry) return true;
    for (const std::size_t p : cfg.blocks[b].preds)
      for (std::size_t k = 0; k < cfg.blocks[p].succs.size(); ++k)
        if (cfg.blocks[p].succs[k] == b && edge_exec_[p][k]) return true;
    return false;
  }

  Env entry_env(const Cfg& cfg, std::size_t b) const {
    Env env(names_.size(), LatticeValue::top());
    if (b == cfg.entry) {
      for (std::size_t v = 0; v < names_.size(); ++v)
        if (is_param_[v]) env[v] = LatticeValue::bottom();
      return env;
    }
    for (const std::size_t p : cfg.blocks[b].preds)
      for (std::size_t k = 0; k < cfg.blocks[p].succs.size(); ++k)
        if (cfg.blocks[p].succs[k] == b && edge_exec_[p][k])
          for (std::size_t v = 0; v < names_.size(); ++v)
            env[v] = join(env[v], out_env_[p][v]);
    return env;
  }

  void transfer(const Cfg& cfg, std::size_t b, Env& env,
                LatticeValue* cond_value) const {
    const BasicBlock& block = cfg.blocks[b];
    for (const auto& item : block.items) {
      switch (item.kind) {
        case CfgItemKind::kDecl: {
          LatticeValue v = LatticeValue::bottom();
          if (item.decl->init) v = eval(*item.decl->init, env, false);
          if (!item.decl->init ||
              item.decl->type_text.find('[') != std::string::npos)
            v = LatticeValue::bottom();
          assign(item.decl->name, v, env, false);
          break;
        }
        case CfgItemKind::kExpr: {
          const LatticeValue v = eval(*item.expr, env, false);
          if (item.expr == block.condition) *cond_value = v;
          break;
        }
        case CfgItemKind::kReturn:
          if (item.expr) eval(*item.expr, env, false);
          break;
      }
    }
  }

  bool update_edges(const Cfg& cfg, std::size_t b,
                    const LatticeValue& cond_value) {
    const BasicBlock& block = cfg.blocks[b];
    bool changed = false;
    const auto mark = [&](std::size_t k) {
      if (!edge_exec_[b][k]) {
        edge_exec_[b][k] = true;
        changed = true;
      }
    };
    if (block.condition != nullptr && block.succs.size() == 2 &&
        cond_value.is_const()) {
      mark(cond_value.value != 0 ? 0 : 1);
      return changed;
    }
    for (std::size_t k = 0; k < block.succs.size(); ++k) mark(k);
    return changed;
  }

  void assign(const std::string& name, const LatticeValue& v, Env& env,
              bool maybe) const {
    const int idx = lookup(name);
    if (idx < 0) return;
    env[static_cast<std::size_t>(idx)] =
        maybe ? join(env[static_cast<std::size_t>(idx)], v) : v;
  }

  // Evaluates `e` against `env`, applying assignment side effects. With
  // `maybe` set the subexpression may not execute at runtime (short-circuit
  // RHS, ternary arms), so definitions join with the incoming value.
  LatticeValue eval(const Expr& e, Env& env, bool maybe) const {
    switch (e.kind) {
      case ExprKind::kNumber: {
        const auto v = parse_int_literal(e.text);
        return v ? LatticeValue::constant(*v) : LatticeValue::bottom();
      }
      case ExprKind::kString:
      case ExprKind::kCharLiteral:
        return LatticeValue::bottom();
      case ExprKind::kIdentifier: {
        const int idx = lookup(e.text);
        if (idx < 0) return LatticeValue::bottom();
        return env[static_cast<std::size_t>(idx)];
      }
      case ExprKind::kUnary:
        return eval_unary(e, env, maybe);
      case ExprKind::kBinary:
        return eval_binary(e, env, maybe);
      case ExprKind::kTernary: {
        const LatticeValue c = eval(*e.children[0], env, maybe);
        if (c.is_const())
          return eval(*e.children[c.value != 0 ? 1 : 2], env, maybe);
        const LatticeValue a = eval(*e.children[1], env, true);
        const LatticeValue b = eval(*e.children[2], env, true);
        return join(join(a, b), LatticeValue::bottom());
      }
      case ExprKind::kCall:
      case ExprKind::kIndex:
      case ExprKind::kMember:
        for (const auto& c : e.children)
          if (c) eval(*c, env, maybe);
        return LatticeValue::bottom();
      case ExprKind::kCast:
        // Conservative: a narrowing cast changes the value, and the
        // mini-C type system cannot prove otherwise.
        eval(*e.children[0], env, maybe);
        return LatticeValue::bottom();
    }
    return LatticeValue::bottom();
  }

  LatticeValue eval_unary(const Expr& e, Env& env, bool maybe) const {
    const std::string& op = e.text;
    if (op == "++" || op == "--" || op == "post++" || op == "post--") {
      const Expr& target = *e.children[0];
      if (target.kind != ExprKind::kIdentifier) {
        eval(target, env, maybe);
        return LatticeValue::bottom();
      }
      const LatticeValue old = eval(target, env, maybe);
      const bool inc = op == "++" || op == "post++";
      const LatticeValue updated =
          old.is_const()
              ? LatticeValue::constant(inc ? wrap_add(old.value, 1)
                                           : wrap_sub(old.value, 1))
              : LatticeValue::bottom();
      assign(target.text, updated, env, maybe);
      return op[0] == 'p' ? old : updated;
    }
    if (op == "sizeof" || op == "*" || op == "&") {
      if (op != "sizeof") eval(*e.children[0], env, maybe);
      return LatticeValue::bottom();
    }
    const LatticeValue v = eval(*e.children[0], env, maybe);
    if (!v.is_const()) return LatticeValue::bottom();
    if (op == "!") return LatticeValue::constant(v.value == 0 ? 1 : 0);
    if (op == "~") return LatticeValue::constant(~v.value);
    if (op == "-") return LatticeValue::constant(wrap_neg(v.value));
    if (op == "+") return v;
    return LatticeValue::bottom();
  }

  LatticeValue eval_binary(const Expr& e, Env& env, bool maybe) const {
    const std::string& op = e.text;
    const bool is_assign = !op.empty() && op.back() == '=' && op != "==" &&
                           op != "!=" && op != "<=" && op != ">=";
    if (is_assign) {
      const Expr& lhs = *e.children[0];
      if (lhs.kind != ExprKind::kIdentifier) {
        eval(lhs, env, maybe);  // nested side effects in a[i] / *p targets
        eval(*e.children[1], env, maybe);
        return LatticeValue::bottom();
      }
      LatticeValue result;
      if (op == "=") {
        result = eval(*e.children[1], env, maybe);
      } else {
        const LatticeValue lv = eval(lhs, env, maybe);
        const LatticeValue rv = eval(*e.children[1], env, maybe);
        result = apply_arith(op.substr(0, op.size() - 1), lv, rv);
      }
      assign(lhs.text, result, env, maybe);
      return result;
    }
    if (op == "&&" || op == "||") {
      const LatticeValue lv = eval(*e.children[0], env, maybe);
      if (lv.is_const()) {
        const bool lt = lv.value != 0;
        // Short circuit: the RHS never runs, so skip its side effects too.
        if (op == "&&" && !lt) return LatticeValue::constant(0);
        if (op == "||" && lt) return LatticeValue::constant(1);
        const LatticeValue rv = eval(*e.children[1], env, maybe);
        if (rv.is_const())
          return LatticeValue::constant(rv.value != 0 ? 1 : 0);
        return LatticeValue::bottom();
      }
      eval(*e.children[1], env, true);  // may or may not execute
      return LatticeValue::bottom();
    }
    const LatticeValue lv = eval(*e.children[0], env, maybe);
    const LatticeValue rv = eval(*e.children[1], env, maybe);
    return apply_arith(op, lv, rv);
  }

  static LatticeValue apply_arith(const std::string& op,
                                  const LatticeValue& lv,
                                  const LatticeValue& rv) {
    if (!lv.is_const() || !rv.is_const()) return LatticeValue::bottom();
    const long long a = lv.value, b = rv.value;
    if (op == "+") return LatticeValue::constant(wrap_add(a, b));
    if (op == "-") return LatticeValue::constant(wrap_sub(a, b));
    if (op == "*") return LatticeValue::constant(wrap_mul(a, b));
    if (op == "/" || op == "%") {
      if (b == 0 || (a == LLONG_MIN && b == -1)) return LatticeValue::bottom();
      return LatticeValue::constant(op == "/" ? a / b : a % b);
    }
    if (op == "<<" || op == ">>") {
      if (b < 0 || b >= 64 || a < 0) return LatticeValue::bottom();
      return LatticeValue::constant(op == "<<" ? static_cast<long long>(
                                                     static_cast<unsigned long long>(a)
                                                     << b)
                                               : (a >> b));
    }
    if (op == "&") return LatticeValue::constant(a & b);
    if (op == "|") return LatticeValue::constant(a | b);
    if (op == "^") return LatticeValue::constant(a ^ b);
    if (op == "==") return LatticeValue::constant(a == b ? 1 : 0);
    if (op == "!=") return LatticeValue::constant(a != b ? 1 : 0);
    if (op == "<") return LatticeValue::constant(a < b ? 1 : 0);
    if (op == ">") return LatticeValue::constant(a > b ? 1 : 0);
    if (op == "<=") return LatticeValue::constant(a <= b ? 1 : 0);
    if (op == ">=") return LatticeValue::constant(a >= b ? 1 : 0);
    return LatticeValue::bottom();
  }

  std::map<std::string, std::size_t> var_ids_;
  std::vector<std::string> names_;
  std::vector<bool> is_param_;
  std::vector<std::vector<bool>> edge_exec_;  // [block][succ index]
  std::vector<Env> out_env_;
};

}  // namespace

SccpResult run_sccp(const Function& fn, const Cfg& cfg) {
  return SccpEngine{}.run(fn, cfg);
}

std::vector<LintDiagnostic> constant_branch_diagnostics(const Function& fn,
                                                        const Cfg& cfg) {
  std::vector<LintDiagnostic> out;
  const SccpResult sccp = run_sccp(fn, cfg);
  if (sccp.constant_branches.empty()) return out;
  const DominatorTree dom = compute_dominators(cfg);
  const std::vector<NaturalLoop> loops = find_natural_loops(cfg, dom);

  for (const ConstantBranch& cb : sccp.constant_branches) {
    // `while (1)` / `do {...} while (0)` are deliberate idiom; only a
    // condition that *folds* to a constant is worth a diagnostic.
    if (cb.is_literal) continue;
    const auto& succs = cfg.blocks[cb.block].succs;
    if (succs.size() != 2) continue;
    const std::size_t live = succs[cb.value ? 0 : 1];
    const std::size_t dead = succs[cb.value ? 1 : 0];

    // Innermost natural loop containing the branch block.
    const NaturalLoop* loop = nullptr;
    for (const NaturalLoop& l : loops) {
      if (!std::binary_search(l.blocks.begin(), l.blocks.end(), cb.block))
        continue;
      if (loop == nullptr || l.blocks.size() < loop->blocks.size()) loop = &l;
    }

    std::string code = cb.value ? "branch-always-true" : "branch-always-false";
    std::string message =
        cb.value ? "condition is always true" : "condition is always false";
    if (loop != nullptr) {
      const auto in_loop = [&](std::size_t b) {
        return std::binary_search(loop->blocks.begin(), loop->blocks.end(), b);
      };
      if (cb.block == loop->header && in_loop(dead)) {
        // The edge into the loop body is dead: the body never runs.
        code = "degenerate-loop";
        message = "loop body never executes";
      } else if (in_loop(live) && !in_loop(dead)) {
        // The only way out of the loop is the edge this condition kills.
        bool other_exit = false;
        for (const std::size_t b : loop->blocks)
          for (const std::size_t s : cfg.blocks[b].succs)
            if (!in_loop(s) && !(b == cb.block && s == dead))
              other_exit = true;
        if (!other_exit) {
          code = "degenerate-loop";
          message = "loop never terminates";
        }
      }
    }
    out.push_back({std::move(code), LintSeverity::kWarning, "",
                   cb.condition->span, std::move(message)});
  }
  std::sort(out.begin(), out.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return std::tie(a.span, a.code) < std::tie(b.span, b.code);
            });
  return out;
}

// ---- copy chains ----------------------------------------------------------

namespace {

struct VarFlow {
  std::size_t n_defs = 0;
  std::string copy_source;  // non-empty if the single def copies a variable
  SourceSpan def_span;
  std::vector<SourceSpan> use_spans;
  bool is_param = false;
  bool declared = false;
};

class FlowCollector {
 public:
  std::map<std::string, VarFlow> collect(const Function& fn) {
    for (const auto& p : fn.params)
      if (!p.name.empty()) {
        vars_[p.name].is_param = true;
        vars_[p.name].declared = true;
      }
    if (fn.body) walk_stmt(*fn.body);
    return std::move(vars_);
  }

 private:
  void record_def(const std::string& name, SourceSpan span,
                  const Expr* source) {
    VarFlow& v = vars_[name];
    ++v.n_defs;
    v.def_span = span;
    v.copy_source = (v.n_defs == 1 && source != nullptr &&
                     source->kind == ExprKind::kIdentifier)
                        ? source->text
                        : std::string();
  }

  void walk_expr(const Expr& e, bool is_def_target) {
    switch (e.kind) {
      case ExprKind::kIdentifier:
        if (!is_def_target) vars_[e.text].use_spans.push_back(e.span);
        return;
      case ExprKind::kBinary: {
        const bool is_assign = !e.text.empty() && e.text.back() == '=' &&
                               e.text != "==" && e.text != "!=" &&
                               e.text != "<=" && e.text != ">=";
        if (is_assign && e.children[0]->kind == ExprKind::kIdentifier) {
          if (e.text != "=") walk_expr(*e.children[0], false);
          walk_expr(*e.children[1], false);
          record_def(e.children[0]->text, e.span,
                     e.text == "=" ? e.children[1].get() : nullptr);
          return;
        }
        walk_expr(*e.children[0], false);
        walk_expr(*e.children[1], false);
        return;
      }
      case ExprKind::kUnary: {
        const bool is_incdec = e.text == "++" || e.text == "--" ||
                               e.text == "post++" || e.text == "post--";
        if (is_incdec && e.children[0]->kind == ExprKind::kIdentifier) {
          walk_expr(*e.children[0], false);
          record_def(e.children[0]->text, e.span, nullptr);
          return;
        }
        walk_expr(*e.children[0], false);
        return;
      }
      default:
        for (const auto& c : e.children)
          if (c) walk_expr(*c, false);
        return;
    }
  }

  void walk_stmt(const Stmt& s) {
    for (const auto& d : s.decls) {
      vars_[d.name].declared = true;
      if (d.init) {
        walk_expr(*d.init, false);
        record_def(d.name, d.span, d.init.get());
      }
    }
    for (const auto& e : s.exprs)
      if (e) walk_expr(*e, false);
    for (const auto& b : s.body)
      if (b) walk_stmt(*b);
  }

  std::map<std::string, VarFlow> vars_;
};

}  // namespace

std::vector<LintDiagnostic> copy_chain_diagnostics(const Function& fn) {
  std::vector<LintDiagnostic> out;
  const std::map<std::string, VarFlow> vars = FlowCollector{}.collect(fn);
  for (const auto& [name, flow] : vars) {
    if (!is_placeholder_name(name)) continue;
    if (flow.is_param || !flow.declared) continue;
    if (flow.n_defs != 1 || flow.copy_source.empty()) continue;
    if (flow.use_spans.empty()) continue;
    SourceSpan span = flow.def_span;
    for (const SourceSpan& u : flow.use_spans) span = cover(span, u);
    out.push_back({"placeholder-copy-chain", LintSeverity::kNote, name, span,
                   "'" + name + "' and its uses are a copy chain of '" +
                       flow.copy_source + "'"});
  }
  std::sort(out.begin(), out.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return std::tie(a.span, a.symbol) < std::tie(b.span, b.symbol);
            });
  return out;
}

// ---- type flow ------------------------------------------------------------

namespace {

class TypeFlowScanner {
 public:
  std::vector<LintDiagnostic> scan(const Function& fn) {
    for (const auto& p : fn.params)
      if (!p.name.empty()) declare(p.name, p.type_text);
    if (fn.body) collect_decls(*fn.body);
    if (fn.body) walk_stmt(*fn.body);
    std::sort(out_.begin(), out_.end(),
              [](const LintDiagnostic& a, const LintDiagnostic& b) {
                return std::tie(a.span, a.code) < std::tie(b.span, b.code);
              });
    return std::move(out_);
  }

 private:
  void declare(const std::string& name, const std::string& type) {
    types_.emplace(name, type);  // first declaration wins
  }

  void collect_decls(const Stmt& s) {
    for (const auto& d : s.decls) declare(d.name, d.type_text);
    for (const auto& b : s.body)
      if (b) collect_decls(*b);
  }

  // Declared concrete (non-flat) type of a plain identifier, or nullptr.
  const std::string* concrete_type_of(const Expr& e) const {
    if (e.kind != ExprKind::kIdentifier) return nullptr;
    const auto it = types_.find(e.text);
    if (it == types_.end()) return nullptr;
    if (is_flat_type(it->second)) return nullptr;
    return &it->second;
  }

  void walk_expr(const Expr& e) {
    if (e.kind == ExprKind::kCast && is_flat_type(e.type_text)) {
      if (const std::string* concrete = concrete_type_of(*e.children[0])) {
        out_.push_back({"collapsible-flat-cast", LintSeverity::kNote,
                        e.type_text, e.span,
                        "cast of '" + e.children[0]->text + "' through '" +
                            e.type_text + "' collapses to declared type '" +
                            *concrete + "'"});
      }
    }
    for (const auto& c : e.children)
      if (c) walk_expr(*c);
  }

  void walk_stmt(const Stmt& s) {
    for (const auto& d : s.decls) {
      if (is_flat_type(d.type_text) && d.init) {
        const Expr* src = d.init.get();
        // Look through a flat cast over the initializer: the Hex-Rays
        // idiom is `__int64 v5 = (__int64)len;`.
        while (src->kind == ExprKind::kCast && is_flat_type(src->type_text))
          src = src->children[0].get();
        if (const std::string* concrete = concrete_type_of(*src)) {
          out_.push_back({"collapsible-flat-decl", LintSeverity::kNote,
                          d.type_text, d.span,
                          "'" + d.name + "' declared as '" + d.type_text +
                              "' but provably holds '" + *concrete + "' ('" +
                              src->text + "')"});
        }
      }
      if (d.init) walk_expr(*d.init);
    }
    for (const auto& e : s.exprs)
      if (e) walk_expr(*e);
    for (const auto& b : s.body)
      if (b) walk_stmt(*b);
  }

  std::map<std::string, std::string> types_;
  std::vector<LintDiagnostic> out_;
};

}  // namespace

std::vector<LintDiagnostic> type_flow_diagnostics(const Function& fn) {
  return TypeFlowScanner{}.scan(fn);
}

PassSummary summarize_passes(const Function& fn, const Cfg& cfg) {
  PassSummary summary;
  const DominatorTree dom = compute_dominators(cfg);
  summary.dominator_height = dom.height;
  summary.n_natural_loops = find_natural_loops(cfg, dom).size();
  summary.n_constant_branches = run_sccp(fn, cfg).constant_branches.size();
  return summary;
}

}  // namespace decompeval::lang
