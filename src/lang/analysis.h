// Static analyses over the mini-C AST:
//  - normalized subtree signatures (codeBLEU's syntactic AST match),
//  - def-use dataflow edges (codeBLEU's semantic dataflow match),
//  - structural "beacon" features (the comprehension cues the program-
//    comprehension literature identifies: calls, strings, constants,
//    control structure), used by the simulated participant model.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace decompeval::lang {

/// Multiset of serialized subtrees with identifiers normalized to `ID`,
/// literals to `LIT`, and member names kept (they carry structure).
/// Every expression and statement node contributes one signature.
std::map<std::string, int> subtree_signatures(const Function& fn);

/// A def-use edge in position-normalized form: the k-th occurrence of a
/// variable (counting all variable occurrences left-to-right) uses the
/// value produced at the j-th occurrence.
struct DataflowEdge {
  int use_position;
  int def_position;
  auto operator<=>(const DataflowEdge&) const = default;
};

/// Extracts def-use edges. Defs are parameter bindings, initialized
/// declarations, assignments and increment/decrement; a use links to the
/// most recent preceding def of the same variable (straight-line
/// approximation over the statement order, which is what codeBLEU's
/// dataflow match effectively compares).
std::set<DataflowEdge> dataflow_edges(const Function& fn);

/// Structural comprehension beacons.
struct StructuralFeatures {
  int call_count = 0;
  std::vector<std::string> callee_names;
  int string_literal_count = 0;
  int numeric_literal_count = 0;
  int max_nesting_depth = 0;  // nesting of if/loops, 0 = flat body
  int loop_count = 0;
  int branch_count = 0;
  int return_count = 0;
  int cast_count = 0;
  int pointer_deref_count = 0;
  std::set<std::string> identifiers_used;
};

StructuralFeatures structural_features(const Function& fn);

/// All identifier occurrences (variables and callees) in source order.
std::vector<std::string> identifier_occurrences(const Function& fn);

}  // namespace decompeval::lang
