#include "lang/interp.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace decompeval::lang {

namespace {

// Strips qualifiers from a type spelling, keeping base name and stars.
std::string strip_qualifiers(const std::string& type_text) {
  std::string t = type_text;
  for (const char* qual : {"const ", "static ", "volatile ", "restrict ",
                           "struct ", "register "})
    t = util::replace_all(t, qual, "");
  // Collapse duplicate spaces.
  std::string out;
  bool prev_space = false;
  for (const char c : t) {
    const bool space = c == ' ';
    if (space && prev_space) continue;
    out += c;
    prev_space = space;
  }
  return std::string(util::trim(out));
}

bool is_pointer_type(const std::string& type_text) {
  return type_text.find('*') != std::string::npos ||
         type_text.find('(') != std::string::npos;  // function pointer
}

// Removes one '*' level: "char **" → "char *", "node *" → "node".
std::string strip_one_star(const std::string& type_text) {
  const std::size_t star = type_text.rfind('*');
  if (star == std::string::npos) return type_text;
  std::string t = type_text.substr(0, star) + type_text.substr(star + 1);
  return std::string(util::trim(t));
}

std::string base_type_name(const std::string& type_text) {
  std::string t = strip_qualifiers(type_text);
  const std::size_t star = t.find('*');
  if (star != std::string::npos) t = t.substr(0, star);
  return std::string(util::trim(t));
}

std::int64_t truncate_to(std::int64_t value, std::size_t width,
                         bool sign_extend) {
  if (width >= 8) return value;
  const std::uint64_t mask = (1ULL << (width * 8)) - 1;
  std::uint64_t truncated = static_cast<std::uint64_t>(value) & mask;
  if (sign_extend) {
    const std::uint64_t sign_bit = 1ULL << (width * 8 - 1);
    if (truncated & sign_bit) truncated |= ~mask;
  }
  return static_cast<std::int64_t>(truncated);
}

std::int64_t parse_number(const std::string& spelling) {
  std::string digits;
  for (const char c : spelling) {
    if (std::isxdigit(static_cast<unsigned char>(c)) || c == 'x' || c == 'X' ||
        c == '.')
      digits += c;
    else
      break;  // suffix (LL/u/f) begins
  }
  if (digits.find('.') != std::string::npos)
    return static_cast<std::int64_t>(std::stod(digits));
  return static_cast<std::int64_t>(std::stoll(digits, nullptr, 0));
}

std::int64_t parse_char_literal(const std::string& spelling) {
  // spelling includes the quotes: '/', '\0', '\n', '\\', '\xNN'.
  DE_ENSURES(spelling.size() >= 3);
  const std::string body = spelling.substr(1, spelling.size() - 2);
  if (body.size() == 1) return static_cast<unsigned char>(body[0]);
  if (body[0] == '\\') {
    switch (body[1]) {
      case '0': return 0;
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '\\': return '\\';
      case '\'': return '\'';
      case 'x': return std::stoll(body.substr(2), nullptr, 16);
      default: return static_cast<unsigned char>(body[1]);
    }
  }
  return static_cast<unsigned char>(body[0]);
}

}  // namespace

Machine::Machine() {
  // memmove/memcpy are ambient in all decompiled code; both copy byte-wise
  // (memmove correctly handles overlap via a temporary).
  const auto copy_bytes = [](Machine& m, const std::vector<std::int64_t>& args,
                             bool overlap_safe) -> std::int64_t {
    DE_EXPECTS_MSG(args.size() == 3, "mem copy expects 3 arguments");
    const auto dest = static_cast<std::uint64_t>(args[0]);
    const auto src = static_cast<std::uint64_t>(args[1]);
    const auto n = static_cast<std::uint64_t>(args[2]);
    if (overlap_safe) {
      std::vector<std::uint8_t> tmp(n);
      for (std::uint64_t i = 0; i < n; ++i)
        tmp[i] = static_cast<std::uint8_t>(m.load(src + i, 1));
      for (std::uint64_t i = 0; i < n; ++i) m.store(dest + i, 1, tmp[i]);
    } else {
      for (std::uint64_t i = 0; i < n; ++i)
        m.store(dest + i, 1, m.load(src + i, 1));
    }
    return args[0];
  };
  register_builtin("memmove",
                   [copy_bytes](Machine& m, const std::vector<std::int64_t>& a) {
                     return copy_bytes(m, a, true);
                   });
  register_builtin("memcpy",
                   [copy_bytes](Machine& m, const std::vector<std::int64_t>& a) {
                     return copy_bytes(m, a, false);
                   });
}

std::uint64_t Machine::allocate(std::size_t bytes) {
  const std::uint64_t base = next_address_;
  // Pad and align so distinct blocks never touch (catches off-by-one
  // writes in equivalence tests as differing snapshots, not corruption).
  next_address_ += (bytes + 64) & ~15ULL;
  for (std::size_t i = 0; i < bytes; ++i) memory_[base + i] = 0;
  return base;
}

std::int64_t Machine::load(std::uint64_t address, std::size_t width,
                           bool sign_extend) const {
  DE_EXPECTS(width == 1 || width == 2 || width == 4 || width == 8);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const auto it = memory_.find(address + i);
    const std::uint8_t byte = it == memory_.end() ? 0 : it->second;
    value |= static_cast<std::uint64_t>(byte) << (8 * i);
  }
  return truncate_to(static_cast<std::int64_t>(value), width, sign_extend);
}

void Machine::store(std::uint64_t address, std::size_t width,
                    std::int64_t value) {
  DE_EXPECTS(width == 1 || width == 2 || width == 4 || width == 8);
  for (std::size_t i = 0; i < width; ++i)
    memory_[address + i] =
        static_cast<std::uint8_t>((static_cast<std::uint64_t>(value) >>
                                   (8 * i)) &
                                  0xff);
}

std::map<std::uint64_t, std::uint8_t> Machine::memory_snapshot() const {
  std::map<std::uint64_t, std::uint8_t> out;
  for (const auto& [address, byte] : memory_)
    if (byte != 0) out.emplace(address, byte);
  return out;
}

void Machine::register_builtin(const std::string& name, Builtin fn) {
  builtins_[name] = std::move(fn);
}

std::int64_t Machine::register_function_value(Builtin fn) {
  function_values_.push_back(std::move(fn));
  // Ids start high so they never collide with small integers or addresses.
  return static_cast<std::int64_t>(0x70000000ULL + function_values_.size());
}

void Machine::register_layout(const std::string& type_name,
                              std::map<std::string, MemberLayout> members) {
  layouts_[type_name] = std::move(members);
}

std::size_t Machine::width_of(const std::string& type_text) {
  const std::string t = strip_qualifiers(type_text);
  if (is_pointer_type(t)) return 8;
  const auto contains = [&t](const char* needle) {
    return t.find(needle) != std::string::npos;
  };
  // Order matters: wider-width spellings are substrings of narrower checks
  // ("__int8" contains "int8", "uint64_t" contains "int64").
  if (contains("int64") || contains("_QWORD") || contains("size_t") ||
      contains("long") || contains("double") || contains("intptr"))
    return 8;
  if (contains("int32") || contains("_DWORD") || contains("float")) return 4;
  if (contains("int16") || contains("short") || contains("_WORD")) return 2;
  if (contains("int8") || contains("char") || contains("_BYTE") ||
      contains("bool"))
    return 1;
  if (contains("int") || t == "unsigned") return 4;
  if (t == "void") return 1;  // GNU-style void* arithmetic
  return 8;  // unknown struct names behave as machine words
}

std::size_t Machine::pointee_width_of(const std::string& type_text) {
  const std::string t = strip_qualifiers(type_text);
  if (!is_pointer_type(t)) return 8;
  return width_of(strip_one_star(t));
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

namespace {
struct TypedValue {
  std::int64_t value = 0;
  std::string type_text = "__int64";
};
}  // namespace

class Evaluator {
 public:
  Evaluator(Machine& machine, const Function& fn,
            const std::vector<std::int64_t>& args)
      : machine_(machine) {
    DE_EXPECTS_MSG(args.size() == fn.params.size(),
                   "argument count mismatch calling " + fn.name);
    for (std::size_t i = 0; i < args.size(); ++i) {
      Slot slot;
      slot.value = args[i];
      slot.type_text = strip_qualifiers(fn.params[i].type_text);
      variables_[fn.params[i].name] = slot;
    }
    declare_locals(*fn.body);
  }

  std::int64_t run(const Function& fn) {
    const Flow flow = exec(*fn.body);
    return flow.kind == FlowKind::kReturn ? flow.value : 0;
  }

 private:
  struct Slot {
    std::int64_t value = 0;
    std::string type_text = "__int64";
  };

  enum class FlowKind { kNormal, kBreak, kContinue, kReturn };
  struct Flow {
    FlowKind kind = FlowKind::kNormal;
    std::int64_t value = 0;
  };

  // An assignable location: a variable slot or a memory cell.
  struct Location {
    Slot* slot = nullptr;
    std::uint64_t address = 0;
    std::size_t width = 8;
    std::string type_text = "__int64";

    std::int64_t read(const Machine& m) const {
      return slot != nullptr ? slot->value
                             : m.load(address, width, /*sign_extend=*/false);
    }
    void write(Machine& m, std::int64_t v) const {
      if (slot != nullptr)
        slot->value = v;
      else
        m.store(address, width, v);
    }
  };

  void tick() {
    if (++machine_.steps_ > machine_.step_limit)
      throw InterpError("step limit exceeded (possible non-termination)");
  }

  // Pre-declares every local so forward-scoped decompiler declarations
  // (`int v7;` used later) resolve; arrays are allocated here.
  void declare_locals(const Stmt& s) {
    for (const auto& d : s.decls) {
      Slot slot;
      slot.type_text = strip_qualifiers(d.type_text);
      const std::size_t bracket = slot.type_text.find('[');
      if (bracket != std::string::npos) {
        // Array declarator: allocate and bind the base address.
        const std::string element_type = std::string(
            util::trim(slot.type_text.substr(0, bracket)));
        const std::string dim_text = slot.type_text.substr(bracket + 1);
        const std::size_t count =
            dim_text.empty() || dim_text[0] == ']'
                ? 64
                : static_cast<std::size_t>(std::stoull(dim_text));
        const std::size_t elem_width = Machine::width_of(element_type);
        slot.value = static_cast<std::int64_t>(
            machine_.allocate(count * elem_width));
        slot.type_text = element_type + " *";
      }
      variables_[d.name] = slot;
    }
    for (const auto& b : s.body)
      if (b) declare_locals(*b);
  }

  Slot& slot_of(const std::string& name) {
    const auto it = variables_.find(name);
    if (it == variables_.end())
      throw InterpError("unknown identifier: " + name);
    return it->second;
  }

  const std::map<std::string, MemberLayout>& layout_of(
      const std::string& pointer_type) {
    const std::string base = base_type_name(pointer_type);
    const auto it = machine_.layouts_.find(base);
    if (it == machine_.layouts_.end())
      throw InterpError("no layout registered for type: " + base +
                        " (from " + pointer_type + ")");
    return it->second;
  }

  const MemberLayout& member_of(const std::string& pointer_type,
                                const std::string& member) {
    const auto& layout = layout_of(pointer_type);
    const auto it = layout.find(member);
    if (it == layout.end())
      throw InterpError("no member '" + member + "' in layout of " +
                        base_type_name(pointer_type));
    return it->second;
  }

  // ---- expression evaluation ----

  TypedValue eval(const Expr& e) {
    tick();
    switch (e.kind) {
      case ExprKind::kIdentifier: {
        if (e.text == "NULL") return {0, "void *"};
        const auto it = variables_.find(e.text);
        if (it != variables_.end())
          return {it->second.value, it->second.type_text};
        throw InterpError("unknown identifier: " + e.text);
      }
      case ExprKind::kNumber: {
        const bool wide = e.text.find("LL") != std::string::npos ||
                          e.text.find("ll") != std::string::npos;
        return {parse_number(e.text), wide ? "__int64" : "int"};
      }
      case ExprKind::kCharLiteral:
        return {parse_char_literal(e.text), "char"};
      case ExprKind::kString:
        throw InterpError("string literals are not materialized");
      case ExprKind::kUnary:
        return eval_unary(e);
      case ExprKind::kBinary:
        return eval_binary(e);
      case ExprKind::kTernary: {
        const TypedValue cond = eval(*e.children[0]);
        return cond.value != 0 ? eval(*e.children[1]) : eval(*e.children[2]);
      }
      case ExprKind::kCall:
        return eval_call(e);
      case ExprKind::kIndex: {
        const Location loc = locate_index(e);
        const bool sign = loc.width < 8 && is_signed_type(loc.type_text);
        return {machine_.load(loc.address, loc.width, sign), loc.type_text};
      }
      case ExprKind::kMember: {
        const Location loc = locate_member(e);
        const bool sign = loc.width < 8 && is_signed_type(loc.type_text);
        return {machine_.load(loc.address, loc.width, sign), loc.type_text};
      }
      case ExprKind::kCast: {
        const TypedValue operand = eval(*e.children[0]);
        return apply_cast(operand, e.type_text);
      }
    }
    throw InterpError("unreachable expression kind");
  }

  static bool is_signed_type(const std::string& type_text) {
    const std::string t = strip_qualifiers(type_text);
    if (is_pointer_type(t)) return false;
    if (t.find("unsigned") != std::string::npos) return false;
    if (t.find("uint") != std::string::npos) return false;
    if (t == "size_t" || t == "_BYTE" || t == "_WORD" || t == "_DWORD" ||
        t == "_QWORD" || t == "char")
      return false;  // plain char treated unsigned for cross-variant parity
    return true;
  }

  TypedValue apply_cast(const TypedValue& operand, const std::string& type) {
    const std::string t = strip_qualifiers(type);
    if (is_pointer_type(t)) return {operand.value, t};
    const std::size_t width = Machine::width_of(t);
    return {truncate_to(operand.value, width, is_signed_type(t)), t};
  }

  TypedValue eval_unary(const Expr& e) {
    const std::string& op = e.text;
    if (op == "*") {
      const Location loc = locate_deref(e);
      const bool sign = loc.width < 8 && is_signed_type(loc.type_text);
      return {machine_.load(loc.address, loc.width, sign), loc.type_text};
    }
    if (op == "&") {
      const Location loc = locate(*e.children[0]);
      if (loc.slot != nullptr)
        throw InterpError("cannot take the address of a register variable");
      return {static_cast<std::int64_t>(loc.address),
              loc.type_text + " *"};
    }
    if (op == "++" || op == "--" || op == "post++" || op == "post--") {
      const Location loc = locate(*e.children[0]);
      const std::int64_t old_value = loc.read(machine_);
      // Pointer step: ±pointee width for pointer-typed variables.
      std::int64_t step = 1;
      if (loc.slot != nullptr && is_pointer_type(loc.type_text))
        step = static_cast<std::int64_t>(
            Machine::pointee_width_of(loc.type_text));
      const std::int64_t delta = (op == "++" || op == "post++") ? step : -step;
      loc.write(machine_, old_value + delta);
      const bool post = util::starts_with(op, "post");
      return {post ? old_value : old_value + delta, loc.type_text};
    }
    if (op == "sizeof") {
      // Operand is either a type reference (identifier holding a type
      // spelling) or an expression; both resolve to a width.
      const Expr& operand = *e.children[0];
      if (operand.kind == ExprKind::kIdentifier &&
          variables_.find(operand.text) == variables_.end())
        return {static_cast<std::int64_t>(Machine::width_of(operand.text)),
                "unsigned __int64"};
      return {static_cast<std::int64_t>(width_of_expr(operand)),
              "unsigned __int64"};
    }
    const TypedValue v = eval(*e.children[0]);
    if (op == "-") return {-v.value, v.type_text};
    if (op == "+") return v;
    if (op == "!") return {v.value == 0 ? 1 : 0, "int"};
    if (op == "~") return {~v.value, v.type_text};
    throw InterpError("unsupported unary operator: " + op);
  }

  // Static width of an expression's value (for sizeof).
  std::size_t width_of_expr(const Expr& e) {
    // Evaluate the *type* only; cheap approximation via a full eval is fine
    // for the side-effect-free operands sizeof takes in this corpus.
    const TypedValue v = eval(e);
    return Machine::width_of(v.type_text);
  }

  TypedValue eval_binary(const Expr& e) {
    const std::string& op = e.text;
    const bool is_assignment =
        !op.empty() && op.back() == '=' && op != "==" && op != "!=" &&
        op != "<=" && op != ">=";
    if (is_assignment) return eval_assignment(e);

    if (op == "&&") {
      const TypedValue lhs = eval(*e.children[0]);
      if (lhs.value == 0) return {0, "int"};
      return {eval(*e.children[1]).value != 0 ? 1 : 0, "int"};
    }
    if (op == "||") {
      const TypedValue lhs = eval(*e.children[0]);
      if (lhs.value != 0) return {1, "int"};
      return {eval(*e.children[1]).value != 0 ? 1 : 0, "int"};
    }

    const TypedValue lhs = eval(*e.children[0]);
    const TypedValue rhs = eval(*e.children[1]);
    return apply_binary(op, lhs, rhs);
  }

  TypedValue apply_binary(const std::string& op, const TypedValue& lhs,
                          const TypedValue& rhs) {
    // Pointer arithmetic scales the integer side by the pointee width.
    if (op == "+" || op == "-") {
      const bool lp = is_pointer_type(lhs.type_text);
      const bool rp = is_pointer_type(rhs.type_text);
      if (lp && !rp) {
        const auto scale = static_cast<std::int64_t>(
            Machine::pointee_width_of(lhs.type_text));
        return {op == "+" ? lhs.value + rhs.value * scale
                          : lhs.value - rhs.value * scale,
                lhs.type_text};
      }
      if (rp && !lp && op == "+") {
        const auto scale = static_cast<std::int64_t>(
            Machine::pointee_width_of(rhs.type_text));
        return {rhs.value + lhs.value * scale, rhs.type_text};
      }
      if (lp && rp && op == "-") {
        const auto scale = static_cast<std::int64_t>(
            Machine::pointee_width_of(lhs.type_text));
        return {(lhs.value - rhs.value) / scale, "__int64"};
      }
    }
    const std::int64_t a = lhs.value;
    const std::int64_t b = rhs.value;
    const std::string& t =
        is_pointer_type(lhs.type_text) ? lhs.type_text : rhs.type_text;
    if (op == "+") return {a + b, t};
    if (op == "-") return {a - b, t};
    if (op == "*") return {a * b, t};
    if (op == "/") {
      if (b == 0) throw InterpError("division by zero");
      return {a / b, t};
    }
    if (op == "%") {
      if (b == 0) throw InterpError("modulo by zero");
      return {a % b, t};
    }
    if (op == "&") return {a & b, t};
    if (op == "|") return {a | b, t};
    if (op == "^") return {a ^ b, t};
    if (op == "<<") return {a << (b & 63), t};
    if (op == ">>") {
      // Logical shift for unsigned types, arithmetic for signed.
      if (!is_signed_type(lhs.type_text))
        return {static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(a) >> (b & 63)),
                t};
      return {a >> (b & 63), t};
    }
    if (op == "==") return {a == b ? 1 : 0, "int"};
    if (op == "!=") return {a != b ? 1 : 0, "int"};
    if (op == "<") return {a < b ? 1 : 0, "int"};
    if (op == ">") return {a > b ? 1 : 0, "int"};
    if (op == "<=") return {a <= b ? 1 : 0, "int"};
    if (op == ">=") return {a >= b ? 1 : 0, "int"};
    throw InterpError("unsupported binary operator: " + op);
  }

  TypedValue eval_assignment(const Expr& e) {
    const std::string& op = e.text;
    const TypedValue rhs = eval(*e.children[1]);
    const Location loc = locate(*e.children[0]);
    std::int64_t new_value;
    if (op == "=") {
      new_value = rhs.value;
    } else {
      const TypedValue current{loc.read(machine_), loc.type_text};
      const std::string binary_op = op.substr(0, op.size() - 1);
      new_value = apply_binary(binary_op, current, rhs).value;
    }
    loc.write(machine_, new_value);
    return {new_value, loc.type_text};
  }

  TypedValue eval_call(const Expr& e) {
    std::vector<std::int64_t> args;
    args.reserve(e.children.size() - 1);
    // Callee resolution first (it may be an expression like `(e)`).
    const Expr& callee = *e.children[0];
    for (std::size_t i = 1; i < e.children.size(); ++i)
      args.push_back(eval(*e.children[i]).value);

    if (callee.kind == ExprKind::kIdentifier &&
        variables_.find(callee.text) == variables_.end()) {
      const auto it = machine_.builtins_.find(callee.text);
      if (it == machine_.builtins_.end())
        throw InterpError("no builtin registered: " + callee.text);
      return {it->second(machine_, args), "__int64"};
    }
    // Function-pointer call: the callee value is a registered function id.
    const std::int64_t id = eval(callee).value;
    const std::uint64_t index = static_cast<std::uint64_t>(id) - 0x70000000ULL;
    if (index == 0 || index > machine_.function_values_.size())
      throw InterpError("call through a non-function value");
    return {machine_.function_values_[index - 1](machine_, args), "__int64"};
  }

  // ---- lvalue resolution ----

  Location locate(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdentifier: {
        Slot& slot = slot_of(e.text);
        Location loc;
        loc.slot = &slot;
        loc.type_text = slot.type_text;
        return loc;
      }
      case ExprKind::kUnary:
        if (e.text == "*") return locate_deref(e);
        break;
      case ExprKind::kIndex:
        return locate_index(e);
      case ExprKind::kMember:
        return locate_member(e);
      case ExprKind::kCast: {
        // (T *)x as an lvalue base never appears alone; handled via deref.
        break;
      }
      default:
        break;
    }
    throw InterpError("expression is not assignable");
  }

  // `*operand`: address from operand value, width from its pointee type.
  Location locate_deref(const Expr& deref) {
    const TypedValue pointer = eval(*deref.children[0]);
    Location loc;
    loc.address = static_cast<std::uint64_t>(pointer.value);
    loc.width = Machine::pointee_width_of(pointer.type_text);
    loc.type_text = is_pointer_type(pointer.type_text)
                        ? strip_one_star(strip_qualifiers(pointer.type_text))
                        : "__int64";
    return loc;
  }

  Location locate_index(const Expr& e) {
    const TypedValue base = eval(*e.children[0]);
    const TypedValue index = eval(*e.children[1]);
    const std::size_t width = Machine::pointee_width_of(base.type_text);
    Location loc;
    loc.address = static_cast<std::uint64_t>(
        base.value + index.value * static_cast<std::int64_t>(width));
    loc.width = width;
    loc.type_text = is_pointer_type(base.type_text)
                        ? strip_one_star(strip_qualifiers(base.type_text))
                        : "__int64";
    return loc;
  }

  Location locate_member(const Expr& e) {
    DE_EXPECTS_MSG(e.text == "->", "only -> member access is supported");
    const TypedValue base = eval(*e.children[0]);
    const MemberLayout& member = member_of(base.type_text, e.member_name);
    Location loc;
    loc.address = static_cast<std::uint64_t>(base.value) + member.offset;
    loc.width = member.width;
    loc.type_text = member.type_text;
    return loc;
  }

  // ---- statements ----

  Flow exec(const Stmt& s) {
    tick();
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& b : s.body) {
          const Flow flow = exec(*b);
          if (flow.kind != FlowKind::kNormal) return flow;
        }
        return {};
      case StmtKind::kDecl:
        for (const auto& d : s.decls) {
          if (d.init) {
            const TypedValue v = eval(*d.init);
            slot_of(d.name).value = v.value;
          }
        }
        return {};
      case StmtKind::kExpr:
        eval(*s.exprs[0]);
        return {};
      case StmtKind::kIf: {
        if (eval(*s.exprs[0]).value != 0) return exec(*s.body[0]);
        if (s.body.size() > 1) return exec(*s.body[1]);
        return {};
      }
      case StmtKind::kWhile:
        while (eval(*s.exprs[0]).value != 0) {
          const Flow flow = exec(*s.body[0]);
          if (flow.kind == FlowKind::kReturn) return flow;
          if (flow.kind == FlowKind::kBreak) break;
        }
        return {};
      case StmtKind::kDoWhile:
        do {
          const Flow flow = exec(*s.body[0]);
          if (flow.kind == FlowKind::kReturn) return flow;
          if (flow.kind == FlowKind::kBreak) break;
        } while (eval(*s.exprs[0]).value != 0);
        return {};
      case StmtKind::kFor: {
        if (!s.decls.empty()) {
          for (const auto& d : s.decls)
            if (d.init) slot_of(d.name).value = eval(*d.init).value;
        } else if (s.exprs[0]) {
          eval(*s.exprs[0]);
        }
        while (s.exprs[1] == nullptr || eval(*s.exprs[1]).value != 0) {
          const Flow flow = exec(*s.body[0]);
          if (flow.kind == FlowKind::kReturn) return flow;
          if (flow.kind == FlowKind::kBreak) break;
          if (s.exprs[2]) eval(*s.exprs[2]);
        }
        return {};
      }
      case StmtKind::kReturn: {
        Flow flow;
        flow.kind = FlowKind::kReturn;
        if (!s.exprs.empty() && s.exprs[0]) flow.value = eval(*s.exprs[0]).value;
        return flow;
      }
      case StmtKind::kBreak:
        return {FlowKind::kBreak, 0};
      case StmtKind::kContinue:
        return {FlowKind::kContinue, 0};
      case StmtKind::kEmpty:
        return {};
    }
    return {};
  }

  Machine& machine_;
  std::map<std::string, Slot> variables_;
};

std::int64_t Machine::call(const Function& fn,
                           const std::vector<std::int64_t>& args) {
  Evaluator evaluator(*this, fn, args);
  return evaluator.run(fn);
}

}  // namespace decompeval::lang
