// Basic-block control-flow graphs over the mini-C AST.
//
// The straight-line def-use approximation in lang/analysis.h is what
// codeBLEU compares, but it cannot answer path questions (is this use
// guarded by an initializing branch? is this store ever observed?). The
// CFG decomposes a Function into basic blocks of straight-line items —
// declarations, expression statements, returns, branch conditions and
// for-steps — connected by the edges the statement structure induces
// (if/else joins, loop back edges, break/continue exits, early returns).
// Worklist dataflow (lang/dataflow.h) and the annotation lint
// (lang/lint.h) run on top of it.
//
// The graph borrows the AST: every CfgItem points into the Function it
// was built from, which must outlive the Cfg.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lang/ast.h"

namespace decompeval::lang {

enum class CfgItemKind {
  kDecl,    ///< one declarator (decl != nullptr; decl->init may be null)
  kExpr,    ///< expression evaluated for value/effect: statement expression,
            ///< branch condition, or for-step (expr != nullptr)
  kReturn,  ///< return statement (expr = returned value, may be null)
};

/// One straight-line step inside a basic block, in evaluation order.
struct CfgItem {
  CfgItemKind kind{};
  const Declarator* decl = nullptr;
  const Expr* expr = nullptr;
  SourceSpan span;  // declarator span, expression span, or statement span
};

struct BasicBlock {
  std::vector<CfgItem> items;
  /// Branch condition terminating the block (null for fallthrough/return
  /// blocks). When set, succs[0] is the true edge and succs[1] the false
  /// edge. The condition expression also appears as the last kExpr item,
  /// so dataflow sees its uses in order.
  const Expr* condition = nullptr;
  std::vector<std::size_t> succs;
  std::vector<std::size_t> preds;
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  std::size_t entry = 0;
  std::size_t exit = 0;  ///< virtual exit; every return/fallthrough edges here
  /// reachable[b]: block b is reachable from the entry.
  std::vector<bool> reachable;

  std::size_t n_reachable_edges() const;
  std::size_t n_reachable_blocks() const;
};

/// Builds the CFG of a function body. Deterministic: block ids and edge
/// order are a pure function of the AST.
Cfg build_cfg(const Function& fn);

/// McCabe cyclomatic complexity E - N + 2 over the reachable subgraph
/// (1 for straight-line code, +1 per decision).
std::size_t cyclomatic_complexity(const Cfg& cfg);

/// Ids of unreachable blocks that carry at least one item (dead code, e.g.
/// statements after an unconditional return). Empty synthetic join blocks
/// are not reported.
std::vector<std::size_t> unreachable_code_blocks(const Cfg& cfg);

/// Debug rendering ("B0[2 items] -> B1, B2 ..."), stable across runs.
std::string to_string(const Cfg& cfg);

}  // namespace decompeval::lang
