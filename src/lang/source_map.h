// Bidirectional offset <-> (line, col) mapper over a snippet source.
//
// Built once per source string (O(n)); lookups are O(log lines) for
// offset -> position and O(1) for position -> offset. Lines and columns
// are 1-based; columns count bytes, matching the lexer.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace decompeval::lang {

struct LineCol {
  int line = 1;
  int col = 1;
};

class SourceMap {
 public:
  explicit SourceMap(std::string_view source);

  /// (line, col) of the byte at `offset`. Offsets past the end clamp to
  /// one past the last byte.
  LineCol to_line_col(std::size_t offset) const;

  /// Byte offset of (line, col). Out-of-range lines clamp to the last
  /// line; columns past the end of a line clamp to its newline (or EOF).
  std::size_t to_offset(int line, int col) const;

  /// Text of `line` (1-based), without the trailing newline.
  std::string_view line_text(int line) const;

  int line_count() const { return static_cast<int>(line_starts_.size()); }
  std::size_t size() const { return source_.size(); }

 private:
  std::string source_;
  std::vector<std::size_t> line_starts_;  // line_starts_[i] = offset of line i+1
};

}  // namespace decompeval::lang
