#include "lang/parser.h"

#include <cctype>
#include <sstream>

#include "lang/lexer.h"
#include "util/check.h"
#include "util/strings.h"

namespace decompeval::lang {

namespace {

const std::set<std::string>& builtin_types() {
  static const std::set<std::string> kBuiltins = {
      "void",    "char",    "short",   "int",      "long",    "float",
      "double",  "bool",    "_BOOL",   "_BYTE",    "_WORD",   "_DWORD",
      "_QWORD",  "_OWORD",  "__int8",  "__int16",  "__int32", "__int64",
      "size_t",  "ssize_t", "int8_t",  "int16_t",  "int32_t", "int64_t",
      "uint8_t", "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
      "intptr_t", "wchar_t"};
  return kBuiltins;
}

const std::set<std::string>& type_qualifiers() {
  static const std::set<std::string> kQualifiers = {
      "const",  "volatile", "unsigned", "signed",
      "struct", "union",    "enum",     "restrict", "static", "register"};
  return kQualifiers;
}

bool is_calling_convention(const std::string& name) {
  return name == "__fastcall" || name == "__cdecl" || name == "__stdcall" ||
         name == "__thiscall" || name == "__usercall";
}

}  // namespace

bool is_type_like_name(const std::string& name,
                       const std::set<std::string>& typedefs) {
  if (builtin_types().count(name) > 0) return true;
  if (typedefs.count(name) > 0) return true;
  if (util::ends_with(name, "_t")) return true;
  if (util::starts_with(name, "__int")) return true;
  if (name.size() >= 2 && name[0] == '_' &&
      std::isupper(static_cast<unsigned char>(name[1])))
    return true;
  return false;
}

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseOptions& options)
      : tokens_(std::move(tokens)), typedefs_(options.typedef_names) {}

  Function parse() {
    Function fn;
    const SourceSpan start = peek().span;
    fn.return_type = parse_type_tokens();
    const Token& name_tok = expect_identifier("function name");
    fn.name = name_tok.text;
    fn.name_span = name_tok.span;
    expect_punct("(");
    if (!peek().is_punct(")")) {
      // `void` alone means an empty parameter list.
      if (peek().is_identifier("void") && peek(1).is_punct(")")) {
        advance();
      } else {
        for (;;) {
          fn.params.push_back(parse_parameter());
          if (peek().is_punct(",")) {
            advance();
            continue;
          }
          break;
        }
      }
    }
    expect_punct(")");
    fn.body = parse_block();
    fn.span = cover(start, prev_span());
    if (!peek().is(TokenKind::kEndOfFile))
      fail("trailing tokens after function body");
    return fn;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream os;
    os << "parse error at line " << peek().span.line << ":" << peek().span.col
       << " near '" << peek().text << "': " << message;
    throw ParseError(os.str());
  }

  const Token& peek(std::size_t lookahead = 0) const {
    const std::size_t i = pos_ + lookahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  /// Span of the most recently consumed token — the end anchor for any
  /// construct that just finished parsing.
  SourceSpan prev_span() const {
    return pos_ > 0 ? tokens_[pos_ - 1].span : tokens_[0].span;
  }
  void expect_punct(const char* spelling) {
    if (!peek().is_punct(spelling)) {
      fail(std::string("expected '") + spelling + "'");
    }
    advance();
  }
  const Token& expect_identifier(const char* what) {
    if (!peek().is(TokenKind::kIdentifier))
      fail(std::string("expected ") + what);
    return advance();
  }

  bool at_type_start() const {
    const Token& t = peek();
    if (!t.is(TokenKind::kIdentifier)) return false;
    if (type_qualifiers().count(t.text) > 0) return true;
    if (is_calling_convention(t.text)) return true;
    if (!is_type_like_name(t.text, typedefs_)) return false;
    // An identifier that is also a typedef could still be an expression
    // (`buffer->used`); require a declarator-looking continuation.
    const Token& n = peek(1);
    return n.is(TokenKind::kIdentifier) || n.is_punct("*") ||
           n.is_punct("(") ||
           (n.is(TokenKind::kIdentifier) && is_calling_convention(n.text));
  }

  // Consumes a run of type tokens (qualifiers, base type names, pointer
  // stars, calling conventions) and returns the canonical joined spelling.
  std::string parse_type_tokens() {
    std::vector<std::string> parts;
    bool saw_base = false;
    for (;;) {
      const Token& t = peek();
      if (t.is(TokenKind::kIdentifier)) {
        if (is_calling_convention(t.text)) {
          advance();  // calling conventions are dropped from the type text
          continue;
        }
        if (type_qualifiers().count(t.text) > 0) {
          parts.push_back(advance().text);
          continue;
        }
        if (!saw_base && is_type_like_name(t.text, typedefs_)) {
          parts.push_back(advance().text);
          saw_base = true;
          continue;
        }
        // Multi-keyword builtins: `unsigned long long`, `long int`...
        if (saw_base && (t.text == "int" || t.text == "long" ||
                         t.text == "char" || t.text == "short" ||
                         t.text == "double")) {
          parts.push_back(advance().text);
          continue;
        }
        break;
      }
      if (t.is_punct("*")) {
        parts.push_back(advance().text);
        continue;
      }
      break;
    }
    if (parts.empty()) fail("expected a type");
    return util::join(parts, " ");
  }

  Parameter parse_parameter() {
    Parameter p;
    const SourceSpan start = peek().span;
    p.type_text = parse_type_tokens();
    // Function-pointer declarator: type ( [conv] * name ) ( params ).
    if (peek().is_punct("(")) {
      advance();
      while (peek().is(TokenKind::kIdentifier) &&
             is_calling_convention(peek().text))
        advance();
      expect_punct("*");
      std::string stars = "*";
      while (peek().is_punct("*")) {
        advance();
        stars += "*";
      }
      if (peek().is(TokenKind::kIdentifier)) {
        const Token& name_tok = advance();
        p.name = name_tok.text;
        p.name_span = name_tok.span;
      }
      expect_punct(")");
      expect_punct("(");
      std::vector<std::string> arg_types;
      if (!peek().is_punct(")")) {
        for (;;) {
          arg_types.push_back(parse_type_tokens());
          // Parameter names inside the function-pointer type are allowed
          // and ignored: `int (*visit)(void *aux, node *n)`.
          if (peek().is(TokenKind::kIdentifier)) advance();
          if (peek().is_punct(",")) {
            advance();
            continue;
          }
          break;
        }
      }
      expect_punct(")");
      p.type_text += " (" + stars + ")(" + util::join(arg_types, ", ") + ")";
      p.span = cover(start, prev_span());
      return p;
    }
    if (peek().is(TokenKind::kIdentifier)) {
      const Token& name_tok = advance();
      p.name = name_tok.text;
      p.name_span = name_tok.span;
    }
    // Array suffix folds into the type text.
    while (peek().is_punct("[")) {
      advance();
      std::string dim;
      if (peek().is(TokenKind::kNumber)) dim = advance().text;
      expect_punct("]");
      p.type_text += "[" + dim + "]";
    }
    p.span = cover(start, prev_span());
    return p;
  }

  StmtPtr parse_block() {
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    const SourceSpan start = peek().span;
    expect_punct("{");
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::kEndOfFile)) fail("unterminated block");
      block->body.push_back(parse_statement());
    }
    expect_punct("}");
    block->span = cover(start, prev_span());
    return block;
  }

  StmtPtr parse_statement() {
    const Token& t = peek();
    if (t.is_punct("{")) return parse_block();
    if (t.is_punct(";")) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kEmpty;
      s->span = advance().span;
      return s;
    }
    if (t.is(TokenKind::kIdentifier)) {
      if (t.text == "if") return parse_if();
      if (t.text == "while") return parse_while();
      if (t.text == "do") return parse_do_while();
      if (t.text == "for") return parse_for();
      if (t.text == "return") return parse_return();
      if (t.text == "break" || t.text == "continue") {
        auto s = std::make_unique<Stmt>();
        s->kind = t.text == "break" ? StmtKind::kBreak : StmtKind::kContinue;
        const SourceSpan start = advance().span;
        expect_punct(";");
        s->span = cover(start, prev_span());
        return s;
      }
      if (at_type_start()) return parse_declaration();
    }
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kExpr;
    const SourceSpan start = t.span;
    s->exprs.push_back(parse_expression());
    expect_punct(";");
    s->span = cover(start, prev_span());
    return s;
  }

  StmtPtr parse_declaration() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kDecl;
    const SourceSpan start = peek().span;
    const std::string base_type = parse_type_tokens();
    for (;;) {
      Declarator d;
      const SourceSpan decl_start = peek().span;
      d.type_text = base_type;
      while (peek().is_punct("*")) {
        advance();
        d.type_text += " *";
      }
      const Token& name_tok = expect_identifier("declarator name");
      d.name = name_tok.text;
      d.name_span = name_tok.span;
      while (peek().is_punct("[")) {
        advance();
        std::string dim;
        if (peek().is(TokenKind::kNumber)) dim = advance().text;
        expect_punct("]");
        d.type_text += "[" + dim + "]";
      }
      if (peek().is_punct("=")) {
        advance();
        d.init = parse_assignment();
      }
      d.span = cover(decl_start, prev_span());
      s->decls.push_back(std::move(d));
      if (peek().is_punct(",")) {
        advance();
        continue;
      }
      break;
    }
    expect_punct(";");
    s->span = cover(start, prev_span());
    return s;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kIf;
    const SourceSpan start = advance().span;  // 'if'
    expect_punct("(");
    s->exprs.push_back(parse_expression());
    expect_punct(")");
    s->body.push_back(parse_statement());
    if (peek().is_identifier("else")) {
      advance();
      s->body.push_back(parse_statement());
    }
    s->span = cover(start, prev_span());
    return s;
  }

  StmtPtr parse_while() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kWhile;
    const SourceSpan start = advance().span;  // 'while'
    expect_punct("(");
    s->exprs.push_back(parse_expression());
    expect_punct(")");
    s->body.push_back(parse_statement());
    s->span = cover(start, prev_span());
    return s;
  }

  StmtPtr parse_do_while() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kDoWhile;
    const SourceSpan start = advance().span;  // 'do'
    s->body.push_back(parse_statement());
    if (!peek().is_identifier("while")) fail("expected 'while' after do-body");
    advance();
    expect_punct("(");
    s->exprs.push_back(parse_expression());
    expect_punct(")");
    expect_punct(";");
    s->span = cover(start, prev_span());
    return s;
  }

  StmtPtr parse_for() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kFor;
    const SourceSpan start = advance().span;  // 'for'
    expect_punct("(");
    // Init clause: declaration, expression, or empty.
    if (peek().is_punct(";")) {
      advance();
      s->exprs.push_back(nullptr);
    } else if (at_type_start()) {
      StmtPtr decl = parse_declaration();  // consumes the ';'
      s->decls = std::move(decl->decls);
      s->exprs.push_back(nullptr);
    } else {
      s->exprs.push_back(parse_expression());
      expect_punct(";");
    }
    // Condition.
    if (peek().is_punct(";")) {
      advance();
      s->exprs.push_back(nullptr);
    } else {
      s->exprs.push_back(parse_expression());
      expect_punct(";");
    }
    // Step.
    if (peek().is_punct(")")) {
      s->exprs.push_back(nullptr);
    } else {
      s->exprs.push_back(parse_expression());
    }
    expect_punct(")");
    s->body.push_back(parse_statement());
    s->span = cover(start, prev_span());
    return s;
  }

  StmtPtr parse_return() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kReturn;
    const SourceSpan start = advance().span;  // 'return'
    if (peek().is_punct(";")) {
      s->exprs.push_back(nullptr);
    } else {
      s->exprs.push_back(parse_expression());
    }
    expect_punct(";");
    s->span = cover(start, prev_span());
    return s;
  }

  // ---- Expressions ------------------------------------------------------
  //
  // Expression spans build bottom-up: leaves take their token's span, and
  // every interior node covers its operator token plus all children.

  ExprPtr make_expr(ExprKind kind, std::string text, SourceSpan span) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->text = std::move(text);
    e->span = span;
    return e;
  }

  ExprPtr parse_expression() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_ternary();
    const Token& t = peek();
    static const char* kAssignOps[] = {"=",  "+=", "-=", "*=",  "/=",  "%=",
                                       "&=", "|=", "^=", "<<=", ">>="};
    for (const char* op : kAssignOps) {
      if (t.is_punct(op)) {
        const SourceSpan op_span = advance().span;
        ExprPtr rhs = parse_assignment();  // right associative
        ExprPtr e = make_expr(ExprKind::kBinary, op,
                              cover(cover(lhs->span, op_span), rhs->span));
        e->children.push_back(std::move(lhs));
        e->children.push_back(std::move(rhs));
        return e;
      }
    }
    return lhs;
  }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (!peek().is_punct("?")) return cond;
    advance();  // '?'
    ExprPtr then_e = parse_expression();
    expect_punct(":");
    ExprPtr else_e = parse_assignment();
    ExprPtr e = make_expr(ExprKind::kTernary, "?:",
                          cover(cond->span, else_e->span));
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(then_e));
    e->children.push_back(std::move(else_e));
    return e;
  }

  // Precedence-climbing over binary operators.
  int binary_precedence(const Token& t) const {
    if (!t.is(TokenKind::kPunct)) return -1;
    const std::string& s = t.text;
    if (s == "||") return 0;
    if (s == "&&") return 1;
    if (s == "|") return 2;
    if (s == "^") return 3;
    if (s == "&") return 4;
    if (s == "==" || s == "!=") return 5;
    if (s == "<" || s == ">" || s == "<=" || s == ">=") return 6;
    if (s == "<<" || s == ">>") return 7;
    if (s == "+" || s == "-") return 8;
    if (s == "*" || s == "/" || s == "%") return 9;
    return -1;
  }

  ExprPtr parse_binary(int min_precedence) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const int prec = binary_precedence(peek());
      if (prec < min_precedence) return lhs;
      const std::string op = peek().text;
      advance();
      ExprPtr rhs = parse_binary(prec + 1);
      ExprPtr e = make_expr(ExprKind::kBinary, op,
                            cover(lhs->span, rhs->span));
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  // True if the parenthesized token run starting at `pos_` (which must be
  // at '(') spells a type, i.e. this is a cast.
  bool looks_like_cast() const {
    std::size_t i = pos_ + 1;  // past '('
    if (!tokens_[i].is(TokenKind::kIdentifier)) return false;
    const std::string& first = tokens_[i].text;
    const bool first_is_type = type_qualifiers().count(first) > 0 ||
                               is_type_like_name(first, typedefs_);
    if (!first_is_type) return false;
    int depth = 0;
    for (; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.is_punct("(")) {
        ++depth;  // function-pointer cast like (int (*)(void))
        continue;
      }
      if (t.is_punct(")")) {
        if (depth == 0) break;
        --depth;
        continue;
      }
      if (t.is(TokenKind::kIdentifier)) {
        const bool ok = type_qualifiers().count(t.text) > 0 ||
                        is_type_like_name(t.text, typedefs_) ||
                        t.text == "int" || t.text == "long" ||
                        t.text == "char" || t.text == "short" ||
                        t.text == "double" || is_calling_convention(t.text);
        if (!ok) return false;
        continue;
      }
      if (t.is_punct("*") || t.is_punct("[") || t.is_punct("]") ||
          t.is(TokenKind::kNumber))
        continue;
      // Argument separators inside a function-pointer cast's nested
      // parameter list, e.g. (int (*)(void *, int))fn.
      if (t.is_punct(",") && depth > 0) continue;
      return false;
    }
    if (i >= tokens_.size() || !tokens_[i].is_punct(")")) return false;
    // A cast must be followed by something that can start a unary
    // expression.
    const Token& next = tokens_[i + 1 < tokens_.size() ? i + 1 : i];
    return next.is(TokenKind::kIdentifier) || next.is(TokenKind::kNumber) ||
           next.is(TokenKind::kString) || next.is(TokenKind::kCharLiteral) ||
           next.is_punct("(") || next.is_punct("*") || next.is_punct("&") ||
           next.is_punct("-") || next.is_punct("+") || next.is_punct("!") ||
           next.is_punct("~") || next.is_punct("++") || next.is_punct("--");
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    static const char* kPrefixOps[] = {"!", "~", "-", "+", "*", "&", "++", "--"};
    for (const char* op : kPrefixOps) {
      if (t.is_punct(op)) {
        const SourceSpan op_span = advance().span;
        ExprPtr operand = parse_unary();
        ExprPtr e =
            make_expr(ExprKind::kUnary, op, cover(op_span, operand->span));
        e->children.push_back(std::move(operand));
        return e;
      }
    }
    if (t.is_identifier("sizeof")) {
      const SourceSpan op_span = advance().span;
      ExprPtr e = make_expr(ExprKind::kUnary, "sizeof", op_span);
      if (peek().is_punct("(") && looks_like_cast()) {
        const SourceSpan open_span = advance().span;
        std::string type_text = parse_type_tokens();
        expect_punct(")");
        ExprPtr type_ref = make_expr(ExprKind::kIdentifier,
                                     std::move(type_text),
                                     cover(open_span, prev_span()));
        e->children.push_back(std::move(type_ref));
      } else {
        e->children.push_back(parse_unary());
      }
      e->span = cover(op_span, e->children[0]->span);
      return e;
    }
    if (t.is_punct("(") && looks_like_cast()) {
      const SourceSpan open_span = advance().span;  // '('
      ExprPtr e = make_expr(ExprKind::kCast, "", open_span);
      e->type_text = parse_cast_type();
      expect_punct(")");
      e->children.push_back(parse_unary());
      e->span = cover(open_span, e->children[0]->span);
      return e;
    }
    return parse_postfix();
  }

  // Parses the type inside a cast, including function-pointer shapes.
  std::string parse_cast_type() {
    std::string text = parse_type_tokens();
    if (peek().is_punct("(")) {
      advance();
      std::string inner;
      while (peek().is_punct("*") ||
             (peek().is(TokenKind::kIdentifier) &&
              is_calling_convention(peek().text))) {
        if (peek().is_punct("*")) inner += "*";
        advance();
      }
      expect_punct(")");
      expect_punct("(");
      std::vector<std::string> args;
      if (!peek().is_punct(")")) {
        for (;;) {
          args.push_back(parse_type_tokens());
          if (peek().is_punct(",")) {
            advance();
            continue;
          }
          break;
        }
      }
      expect_punct(")");
      text += " (" + inner + ")(" + util::join(args, ", ") + ")";
    }
    return text;
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      const Token& t = peek();
      if (t.is_punct("(")) {
        advance();
        ExprPtr call = make_expr(ExprKind::kCall, "", e->span);
        call->children.push_back(std::move(e));
        if (!peek().is_punct(")")) {
          for (;;) {
            call->children.push_back(parse_assignment());
            if (peek().is_punct(",")) {
              advance();
              continue;
            }
            break;
          }
        }
        expect_punct(")");
        call->span = cover(call->span, prev_span());
        e = std::move(call);
        continue;
      }
      if (t.is_punct("[")) {
        advance();
        ExprPtr idx = make_expr(ExprKind::kIndex, "", e->span);
        idx->children.push_back(std::move(e));
        idx->children.push_back(parse_expression());
        expect_punct("]");
        idx->span = cover(idx->span, prev_span());
        e = std::move(idx);
        continue;
      }
      if (t.is_punct(".") || t.is_punct("->")) {
        const std::string op = t.text;
        advance();
        ExprPtr mem = make_expr(ExprKind::kMember, op, e->span);
        const Token& member_tok = expect_identifier("member name");
        mem->member_name = member_tok.text;
        mem->span = cover(mem->span, member_tok.span);
        mem->children.push_back(std::move(e));
        e = std::move(mem);
        continue;
      }
      if (t.is_punct("++") || t.is_punct("--")) {
        const std::string op = "post" + t.text;
        const SourceSpan op_span = advance().span;
        ExprPtr post =
            make_expr(ExprKind::kUnary, op, cover(e->span, op_span));
        post->children.push_back(std::move(e));
        e = std::move(post);
        continue;
      }
      return e;
    }
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kIdentifier:
        return make_expr(ExprKind::kIdentifier, advance().text, t.span);
      case TokenKind::kNumber:
        return make_expr(ExprKind::kNumber, advance().text, t.span);
      case TokenKind::kString:
        return make_expr(ExprKind::kString, advance().text, t.span);
      case TokenKind::kCharLiteral:
        return make_expr(ExprKind::kCharLiteral, advance().text, t.span);
      case TokenKind::kPunct:
        if (t.is_punct("(")) {
          advance();
          ExprPtr e = parse_expression();
          expect_punct(")");
          return e;
        }
        break;
      case TokenKind::kEndOfFile:
        break;
    }
    fail("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::set<std::string> typedefs_;
};

}  // namespace

Function parse_function(std::string_view source, const ParseOptions& options) {
  Parser parser(lex(source), options);
  return parser.parse();
}

ExprPtr clone(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->text = e.text;
  out->member_name = e.member_name;
  out->type_text = e.type_text;
  out->span = e.span;
  out->children.reserve(e.children.size());
  for (const auto& c : e.children)
    out->children.push_back(c ? clone(*c) : nullptr);
  return out;
}

StmtPtr clone(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->span = s.span;
  out->body.reserve(s.body.size());
  for (const auto& b : s.body) out->body.push_back(b ? clone(*b) : nullptr);
  out->exprs.reserve(s.exprs.size());
  for (const auto& e : s.exprs) out->exprs.push_back(e ? clone(*e) : nullptr);
  out->decls.reserve(s.decls.size());
  for (const auto& d : s.decls) {
    Declarator nd;
    nd.type_text = d.type_text;
    nd.name = d.name;
    nd.span = d.span;
    nd.name_span = d.name_span;
    nd.init = d.init ? clone(*d.init) : nullptr;
    out->decls.push_back(std::move(nd));
  }
  return out;
}

}  // namespace decompeval::lang
