#include "lang/cfg.h"

#include <sstream>

#include "util/check.h"

namespace decompeval::lang {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

class CfgBuilder {
 public:
  Cfg build(const Function& fn) {
    cfg_.entry = new_block();
    cfg_.exit = new_block();  // virtual exit; every return edges here
    current_ = cfg_.entry;
    if (fn.body) walk(*fn.body);
    // The dangling end of the body falls through to the exit.
    if (current_ != kNone) link(current_, cfg_.exit);
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b)
      for (const std::size_t s : cfg_.blocks[b].succs)
        cfg_.blocks[s].preds.push_back(b);
    compute_reachability();
    return std::move(cfg_);
  }

 private:
  std::size_t new_block() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }

  void link(std::size_t from, std::size_t to) {
    cfg_.blocks[from].succs.push_back(to);
  }

  // Returns the block accepting the next item, materializing a fresh
  // predecessor-less block after a return/break/continue so trailing dead
  // code is still represented (and reported as unreachable).
  std::size_t here() {
    if (current_ == kNone) current_ = new_block();
    return current_;
  }

  void append_expr(const Expr& e) {
    cfg_.blocks[here()].items.push_back({CfgItemKind::kExpr, nullptr, &e,
                                         e.span});
  }

  // Ends the current block with a two-way branch on `cond` and returns the
  // (true, false) successor pair.
  std::pair<std::size_t, std::size_t> branch(const Expr& cond) {
    append_expr(cond);
    const std::size_t b = here();
    cfg_.blocks[b].condition = &cond;
    const std::size_t on_true = new_block();
    const std::size_t on_false = new_block();
    link(b, on_true);
    link(b, on_false);
    return {on_true, on_false};
  }

  void walk(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& child : s.body)
          if (child) walk(*child);
        return;
      case StmtKind::kEmpty:
        return;
      case StmtKind::kDecl:
        for (const auto& d : s.decls)
          cfg_.blocks[here()].items.push_back(
              {CfgItemKind::kDecl, &d, nullptr,
               d.span.valid() ? d.span : s.span});
        return;
      case StmtKind::kExpr:
        append_expr(*s.exprs[0]);
        return;
      case StmtKind::kReturn:
        cfg_.blocks[here()].items.push_back(
            {CfgItemKind::kReturn, nullptr,
             s.exprs.empty() ? nullptr : s.exprs[0].get(), s.span});
        link(here(), cfg_.exit);
        current_ = kNone;
        return;
      case StmtKind::kBreak:
        DE_EXPECTS_MSG(!loops_.empty(), "break outside of a loop");
        link(here(), loops_.back().break_target);
        current_ = kNone;
        return;
      case StmtKind::kContinue:
        DE_EXPECTS_MSG(!loops_.empty(), "continue outside of a loop");
        link(here(), loops_.back().continue_target);
        current_ = kNone;
        return;
      case StmtKind::kIf: {
        const auto [then_block, else_block] = branch(*s.exprs[0]);
        const std::size_t join = new_block();
        current_ = then_block;
        if (s.body[0]) walk(*s.body[0]);
        if (current_ != kNone) link(current_, join);
        current_ = else_block;
        if (s.body.size() > 1 && s.body[1]) walk(*s.body[1]);
        if (current_ != kNone) link(current_, join);
        current_ = join;
        return;
      }
      case StmtKind::kWhile: {
        const std::size_t header = new_block();
        link(here(), header);
        current_ = header;
        const auto [body, after] = branch(*s.exprs[0]);
        loops_.push_back({header, after});
        current_ = body;
        if (s.body[0]) walk(*s.body[0]);
        if (current_ != kNone) link(current_, header);
        loops_.pop_back();
        current_ = after;
        return;
      }
      case StmtKind::kDoWhile: {
        const std::size_t body = new_block();
        link(here(), body);
        // `continue` jumps to the condition, not the body top.
        const std::size_t latch = new_block();
        const std::size_t after = new_block();
        loops_.push_back({latch, after});
        current_ = body;
        if (s.body[0]) walk(*s.body[0]);
        if (current_ != kNone) link(current_, latch);
        loops_.pop_back();
        current_ = latch;
        append_expr(*s.exprs[0]);
        cfg_.blocks[latch].condition = s.exprs[0].get();
        link(latch, body);
        link(latch, after);
        current_ = after;
        return;
      }
      case StmtKind::kFor: {
        // exprs = {init?, cond?, step?}; decls may hold the init declaration.
        for (const auto& d : s.decls)
          cfg_.blocks[here()].items.push_back(
              {CfgItemKind::kDecl, &d, nullptr,
               d.span.valid() ? d.span : s.span});
        if (!s.exprs.empty() && s.exprs[0]) append_expr(*s.exprs[0]);
        const std::size_t header = new_block();
        link(here(), header);
        current_ = header;
        std::size_t body, after;
        if (s.exprs.size() > 1 && s.exprs[1]) {
          std::tie(body, after) = branch(*s.exprs[1]);
        } else {
          body = new_block();
          after = new_block();
          link(header, body);  // `for (;;)` never exits through the header
        }
        const std::size_t latch = new_block();
        loops_.push_back({latch, after});
        current_ = body;
        if (s.body[0]) walk(*s.body[0]);
        if (current_ != kNone) link(current_, latch);
        loops_.pop_back();
        current_ = latch;
        if (s.exprs.size() > 2 && s.exprs[2]) append_expr(*s.exprs[2]);
        link(latch, header);
        current_ = after;
        return;
      }
    }
  }

  void compute_reachability() {
    cfg_.reachable.assign(cfg_.blocks.size(), false);
    std::vector<std::size_t> stack = {cfg_.entry};
    cfg_.reachable[cfg_.entry] = true;
    while (!stack.empty()) {
      const std::size_t b = stack.back();
      stack.pop_back();
      for (const std::size_t s : cfg_.blocks[b].succs)
        if (!cfg_.reachable[s]) {
          cfg_.reachable[s] = true;
          stack.push_back(s);
        }
    }
  }

  struct LoopContext {
    std::size_t continue_target;
    std::size_t break_target;
  };

  Cfg cfg_;
  std::size_t current_ = kNone;
  std::vector<LoopContext> loops_;
};

}  // namespace

std::size_t Cfg::n_reachable_blocks() const {
  std::size_t n = 0;
  for (const bool r : reachable) n += r ? 1 : 0;
  return n;
}

std::size_t Cfg::n_reachable_edges() const {
  std::size_t n = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b)
    if (reachable[b]) n += blocks[b].succs.size();
  return n;
}

Cfg build_cfg(const Function& fn) { return CfgBuilder{}.build(fn); }

std::size_t cyclomatic_complexity(const Cfg& cfg) {
  return cfg.n_reachable_edges() - cfg.n_reachable_blocks() + 2;
}

std::vector<std::size_t> unreachable_code_blocks(const Cfg& cfg) {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
    if (!cfg.reachable[b] && !cfg.blocks[b].items.empty()) out.push_back(b);
  return out;
}

std::string to_string(const Cfg& cfg) {
  std::ostringstream os;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    os << 'B' << b << '[' << cfg.blocks[b].items.size() << ']';
    if (b == cfg.entry) os << " entry";
    if (b == cfg.exit) os << " exit";
    if (!cfg.reachable[b]) os << " unreachable";
    os << " ->";
    for (const std::size_t s : cfg.blocks[b].succs) os << " B" << s;
    os << '\n';
  }
  return os.str();
}

}  // namespace decompeval::lang
