// Lexer for the C subset used by the study snippets (original source,
// Hex-Rays pseudocode, and DIRTY-annotated pseudocode all lex identically).
// Comments (// and /* */) are skipped; line numbers are tracked so parse
// errors and question anchors ("lines 13–17") can reference source lines.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.h"

namespace decompeval::lang {

/// Tokenizes `source`. Throws PreconditionError on an unterminated string
/// or block comment. The result always ends with an kEndOfFile token.
std::vector<Token> lex(std::string_view source);

}  // namespace decompeval::lang
