// Annotation lint over the mini-C AST: dataflow diagnostics (lang/
// dataflow.h), pass-derived diagnostics (lang/passes.h — constant
// branches, degenerate loops, placeholder copy chains, collapsible flat
// types), plus detectors for the textual artifacts decompilers leave
// behind — Hex-Rays placeholder names (a1, v5), machine-width "flat"
// types (_QWORD, __int64) in declarations and casts.
//
// Every diagnostic carries the byte span of the construct it is about;
// parameter diagnostics span the parameter declarator (there is no
// "line 0 means no line" sentinel).
//
// The corpus verifier (snippets/corpus_verifier.h) requires original study
// sources to lint clean, while the Hex-Rays and DIRTY variants are
// *expected* to carry artifact notes — that asymmetry is what lets the
// verifier check that each variant is what its label claims.
#pragma once

#include <string>
#include <vector>

#include "lang/ast.h"

namespace decompeval::lang {

enum class LintSeverity {
  kError,    // use-before-init: reads an indeterminate value
  kWarning,  // dead store, unused parameter/local, unreachable code,
             // constant branch, degenerate loop
  kNote,     // decompiler artifact markers (expected on decompiled variants)
};

struct LintDiagnostic {
  std::string code;  ///< "use-before-init", "dead-store", "unused-param",
                     ///< "unused-local", "unreachable-code",
                     ///< "branch-always-true", "branch-always-false",
                     ///< "degenerate-loop", "placeholder-name",
                     ///< "placeholder-copy-chain", "flat-type-decl",
                     ///< "flat-type-cast", "collapsible-flat-cast",
                     ///< "collapsible-flat-decl"
  LintSeverity severity{};
  std::string symbol;  ///< variable / type text involved (may be empty)
  SourceSpan span;     ///< byte span of the offending construct
  std::string message;

  auto operator<=>(const LintDiagnostic&) const = default;
};

struct LintOptions {
  bool dataflow_checks = true;  ///< CFG/dataflow-derived diagnostics
  bool artifact_checks = true;  ///< placeholder-name / flat-type notes
  bool pass_checks = true;      ///< SCCP / copy-chain / type-flow diagnostics
};

/// Lints one function. Diagnostics are sorted by (span, code, symbol) and
/// are a pure function of the AST.
std::vector<LintDiagnostic> lint_function(const Function& fn,
                                          const LintOptions& options = {});

/// True if `name` follows the Hex-Rays placeholder convention: `a<N>` for
/// arguments, `v<N>` for locals.
bool is_placeholder_name(const std::string& name);

/// True if the type text mentions a machine-width placeholder type
/// (_QWORD/_DWORD/_WORD/_BYTE or an __int<N> spelling).
bool is_flat_type(const std::string& type_text);

/// "line 12:3: dead-store: value assigned to 'carry' is never read".
std::string to_string(const LintDiagnostic& d);

/// Number of kNote artifact diagnostics (placeholder/flat-type) in a run.
std::size_t artifact_count(const std::vector<LintDiagnostic>& diagnostics);

}  // namespace decompeval::lang
