// AST for the C subset covering decompiler pseudocode.
//
// The tree is deliberately compact: expressions and statements are tagged
// unions over child vectors rather than a class hierarchy, which keeps
// subtree serialization (codeBLEU) and traversal (dataflow, beacons)
// uniform. Every node carries the byte span of the source text it was
// parsed from (see source_span.h); annotation consumers highlight
// `source.substr(span.begin, span.length())`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/source_span.h"

namespace decompeval::lang {

enum class ExprKind {
  kIdentifier,   // text = name
  kNumber,       // text = spelling
  kString,       // text = spelling including quotes
  kCharLiteral,  // text = spelling including quotes
  kUnary,        // text = operator; children[0] = operand; "p++"/"p--" are
                 // spelled "post++"/"post--"
  kBinary,       // text = operator (includes assignments); children = {lhs, rhs}
  kTernary,      // children = {cond, then, else}
  kCall,         // children[0] = callee, children[1..] = args
  kIndex,        // children = {base, index}
  kMember,       // text = "." or "->"; member_name set; children[0] = base
  kCast,         // type_text = target type; children[0] = operand
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind{};
  std::string text;         // name / literal / operator, per kind
  std::string member_name;  // kMember only
  std::string type_text;    // kCast only
  std::vector<ExprPtr> children;
  SourceSpan span;
};

enum class StmtKind {
  kBlock,     // body = statements
  kDecl,      // decls = declarators
  kExpr,      // exprs[0]
  kIf,        // exprs[0] = cond; body[0] = then; body[1] = else (optional)
  kWhile,     // exprs[0] = cond; body[0]
  kDoWhile,   // exprs[0] = cond; body[0]
  kFor,       // exprs = {init?, cond?, step?} (nullable); decls may hold the
              // init declaration; body[0]
  kReturn,    // exprs[0] = value (optional; may be null)
  kBreak,
  kContinue,
  kEmpty,
};

struct Declarator {
  std::string type_text;
  std::string name;
  ExprPtr init;   // may be null
  SourceSpan span;       // stars + name + array suffix + initializer
  SourceSpan name_span;  // just the declared identifier
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind{};
  std::vector<StmtPtr> body;
  std::vector<ExprPtr> exprs;  // entries may be null where noted above
  std::vector<Declarator> decls;
  SourceSpan span;
};

struct Parameter {
  std::string type_text;
  std::string name;
  SourceSpan span;       // full declarator: type + stars + name
  SourceSpan name_span;  // just the parameter identifier (invalid if unnamed)
};

/// A parsed function definition — the unit every snippet consists of.
struct Function {
  std::string return_type;
  std::string name;
  std::vector<Parameter> params;
  StmtPtr body;
  SourceSpan span;       // return type through closing brace
  SourceSpan name_span;  // the function identifier
};

/// Deep copy helpers (the AST is move-only by default).
ExprPtr clone(const Expr& e);
StmtPtr clone(const Stmt& s);

}  // namespace decompeval::lang
