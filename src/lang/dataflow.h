// Worklist dataflow over the basic-block CFG: reaching definitions
// (forward, may) and live variables (backward, may), plus the diagnostics
// the annotation lint derives from them — use-before-init on genuinely
// unguarded paths, dead stores across branches, unused parameters and
// locals, unreachable code.
//
// Tracked variables are the function's parameters and declared locals;
// identifiers that are never declared (globals, callees, NULL) produce no
// events. Stores through an index/member/dereference are uses of the base
// pointer, never scalar definitions — consistent with the straight-line
// walker in lang/analysis.h. An uninitialized scalar declaration
// contributes a synthetic "uninit" definition, so a use is flagged exactly
// when that marker reaches it (i.e. when some path from the declaration
// carries no real definition). Declared arrays are storage, not scalars:
// they are treated as defined at the declaration.
//
// Every fact carries the source span of the construct it is about:
// parameter facts span the parameter declarator (there is no "line 0"
// sentinel — parameter bindings are distinguished by `is_param`).
//
// All results are pure functions of the AST: block order, event order and
// diagnostic order are deterministic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lang/cfg.h"

namespace decompeval::lang {

/// One scalar definition site.
struct DefSite {
  std::string name;
  SourceSpan span;        ///< parameter declarator span for entry bindings
  bool is_param = false;  ///< binding of a parameter at function entry
  bool is_uninit = false; ///< synthetic marker of an uninitialized decl
};

/// A use of a variable that an uninitialized declaration reaches: there is
/// at least one path from the declaration to this use with no intervening
/// assignment.
struct UseBeforeInit {
  std::string name;
  SourceSpan span;
};

/// A definition whose value no path observes: the variable is not live
/// immediately after the store (every path kills it before any use).
struct DeadStore {
  std::string name;
  SourceSpan span;
};

/// A parameter or local with no use anywhere in the body; the span covers
/// its declarator.
struct UnusedVar {
  std::string name;
  SourceSpan span;
};

struct DataflowDiagnostics {
  std::vector<UseBeforeInit> uses_before_init;
  std::vector<DeadStore> dead_stores;
  /// Parameters / declared locals with no use anywhere in the body. A fully
  /// unused local is reported here and suppressed from dead_stores.
  std::vector<UnusedVar> unused_params;
  std::vector<UnusedVar> unused_locals;
  /// Span of the first item of each unreachable nonempty block.
  std::vector<SourceSpan> unreachable_spans;

  std::size_t n_defs = 0;  ///< real definitions (params and markers excluded)
  std::size_t n_uses = 0;  ///< uses of tracked variables
  /// Block-iterations until the two fixpoints converged (diagnostic only).
  std::size_t worklist_iterations = 0;

  bool clean() const {
    return uses_before_init.empty() && dead_stores.empty() &&
           unused_params.empty() && unused_locals.empty() &&
           unreachable_spans.empty();
  }
};

/// Runs both analyses over `cfg` (built from `fn`; the caller guarantees
/// the pair matches — use the single-argument overload otherwise).
DataflowDiagnostics analyze_dataflow(const Function& fn, const Cfg& cfg);

/// Convenience overload building its own CFG.
DataflowDiagnostics analyze_dataflow(const Function& fn);

}  // namespace decompeval::lang
