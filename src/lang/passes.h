// Structural and value-flow passes over the basic-block CFG, feeding the
// annotation lint (lang/lint.h) and the static-complexity metric family
// (metrics/static_complexity.h):
//
//  * dominator tree (iterative, RPO) + natural-loop detection via back
//    edges whose head dominates their tail;
//  * sparse conditional constant propagation (SCCP) over the function's
//    tracked scalars, with edge executability — provably constant branch
//    conditions become "branch-always-true"/"branch-always-false"
//    warnings, and loops whose condition folds to a constant become
//    "degenerate-loop" warnings (body never executes / never terminates);
//  * copy-chain detection strengthening the Hex-Rays artifact detectors:
//    a placeholder variable whose only definition copies another variable
//    (`v5 = a1; use(v5)`) flags the whole chain, not just the decl;
//  * type-flow collapse: a `_QWORD`/`__int64` cast or declaration whose
//    operand's declared type is concrete provably collapses to that type.
//
// Everything here is a pure function of the AST/CFG: block order, loop
// order and diagnostic order are deterministic at any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "lang/cfg.h"
#include "lang/lint.h"

namespace decompeval::lang {

constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

struct DominatorTree {
  /// idom[b] = immediate dominator of b; the entry dominates itself;
  /// kNoBlock for blocks unreachable from the entry.
  std::vector<std::size_t> idom;
  /// depth[b] = distance from the entry in the dominator tree (-1 when
  /// unreachable).
  std::vector<int> depth;
  /// Maximum depth over reachable blocks.
  int height = 0;

  /// True if `a` dominates `b` (reflexive). False when either side is
  /// unreachable.
  bool dominates(std::size_t a, std::size_t b) const;
};

/// Cooper–Harvey–Kennedy iterative dominator computation over the
/// reachable subgraph.
DominatorTree compute_dominators(const Cfg& cfg);

/// One natural loop: the target of a back edge plus every block that can
/// reach the back edge's source without passing through the header.
struct NaturalLoop {
  std::size_t header = 0;
  std::size_t latch = 0;             ///< source of the back edge
  std::vector<std::size_t> blocks;   ///< sorted, includes header and latch
};

/// Natural loops of `cfg`, ordered by (header, latch). Irreducible edges
/// (tail not dominated by head) are ignored.
std::vector<NaturalLoop> find_natural_loops(const Cfg& cfg,
                                            const DominatorTree& dom);

/// A branch condition SCCP proved constant.
struct ConstantBranch {
  std::size_t block = 0;           ///< block whose terminator is the branch
  const Expr* condition = nullptr;
  bool value = false;              ///< the branch always goes this way
  bool is_literal = false;         ///< condition is a bare literal (while(1))
};

struct SccpResult {
  std::vector<ConstantBranch> constant_branches;  ///< by block id
  /// executable[b]: SCCP found an executable path from the entry to b.
  std::vector<bool> executable;
};

/// Sparse conditional constant propagation. Conservative: casts, calls,
/// address-taken variables and non-integer literals are never constant.
SccpResult run_sccp(const Function& fn, const Cfg& cfg);

/// Branch/loop diagnostics derived from SCCP + natural loops. Bare
/// literal conditions (`while (1)`) are deliberate idiom and are skipped.
std::vector<LintDiagnostic> constant_branch_diagnostics(const Function& fn,
                                                        const Cfg& cfg);

/// Copy-chain notes: a placeholder variable whose single definition is a
/// copy of another variable. The span covers definition through last use.
std::vector<LintDiagnostic> copy_chain_diagnostics(const Function& fn);

/// Type-flow notes: flat casts/declarations whose operand has a concrete
/// declared type.
std::vector<LintDiagnostic> type_flow_diagnostics(const Function& fn);

/// Aggregates the passes for the static-complexity metric family.
struct PassSummary {
  std::size_t n_natural_loops = 0;
  int dominator_height = 0;
  std::size_t n_constant_branches = 0;  ///< literal conditions included
};

PassSummary summarize_passes(const Function& fn, const Cfg& cfg);

}  // namespace decompeval::lang
