#include "lang/dataflow.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace decompeval::lang {

namespace {

// One ordered def/use event inside a block. `def_id` indexes the global
// definition table for defs; -1 for uses.
struct VarEvent {
  std::size_t var = 0;
  bool is_def = false;
  bool is_uninit = false;      // synthetic marker of an uninitialized decl
  bool is_storage = false;     // array declaration (def that is not a store)
  bool is_param = false;       // parameter binding at function entry
  int def_id = -1;
  SourceSpan span;
};

class DataflowEngine {
 public:
  DataflowDiagnostics run(const Function& fn, const Cfg& cfg) {
    collect_variables(fn, cfg);
    collect_events(fn, cfg);
    number_definitions();
    reach_fixpoint(cfg);
    live_fixpoint(cfg);
    return emit(cfg);
  }

 private:
  // ---- variable universe ---------------------------------------------------

  void collect_variables(const Function& fn, const Cfg& cfg) {
    for (const auto& p : fn.params)
      if (!p.name.empty() && !var_ids_.count(p.name)) {
        var_ids_[p.name] = names_.size();
        names_.push_back(p.name);
        is_param_.push_back(true);
        decl_spans_.push_back(p.span);
      }
    for (const auto& block : cfg.blocks)
      for (const auto& item : block.items)
        if (item.kind == CfgItemKind::kDecl && !var_ids_.count(item.decl->name)) {
          var_ids_[item.decl->name] = names_.size();
          names_.push_back(item.decl->name);
          is_param_.push_back(false);
          decl_spans_.push_back(item.decl->span);
        }
  }

  int lookup(const std::string& name) const {
    const auto it = var_ids_.find(name);
    return it == var_ids_.end() ? -1 : static_cast<int>(it->second);
  }

  // ---- event extraction ----------------------------------------------------

  void emit_use(const std::string& name, SourceSpan span) {
    const int v = lookup(name);
    if (v < 0) return;  // globals, callees, NULL: not tracked
    sink_->push_back(
        {static_cast<std::size_t>(v), false, false, false, false, -1, span});
  }

  void emit_def(const std::string& name, SourceSpan span, bool uninit = false,
                bool storage = false, bool param = false) {
    const int v = lookup(name);
    if (v < 0) return;
    sink_->push_back(
        {static_cast<std::size_t>(v), true, uninit, storage, param, -1, span});
  }

  // Mirrors the straight-line walker in lang/analysis.cpp: assignment and
  // ++/-- targets that are plain identifiers are definitions, stores
  // through index/member/deref read the base, everything else is a use.
  void walk_expr(const Expr& e, bool is_def_target) {
    switch (e.kind) {
      case ExprKind::kIdentifier:
        if (is_def_target) emit_def(e.text, e.span);
        else emit_use(e.text, e.span);
        return;
      case ExprKind::kBinary: {
        const bool is_assign = !e.text.empty() && e.text.back() == '=' &&
                               e.text != "==" && e.text != "!=" &&
                               e.text != "<=" && e.text != ">=";
        if (is_assign) {
          if (e.text != "=") walk_expr(*e.children[0], false);
          walk_expr(*e.children[1], false);  // RHS evaluated before the def
          walk_expr(*e.children[0], true);
          return;
        }
        walk_expr(*e.children[0], false);
        walk_expr(*e.children[1], false);
        return;
      }
      case ExprKind::kUnary: {
        const bool is_incdec = e.text == "++" || e.text == "--" ||
                               e.text == "post++" || e.text == "post--";
        if (is_incdec) {
          walk_expr(*e.children[0], false);  // read
          walk_expr(*e.children[0], true);   // write
          return;
        }
        walk_expr(*e.children[0], false);
        return;
      }
      case ExprKind::kMember:
      case ExprKind::kCast:
        walk_expr(*e.children[0], false);
        return;
      case ExprKind::kIndex:
        walk_expr(*e.children[0], false);
        walk_expr(*e.children[1], false);
        return;
      case ExprKind::kCall:
      case ExprKind::kTernary:
        for (const auto& c : e.children)
          if (c) walk_expr(*c, false);
        return;
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kCharLiteral:
        return;
    }
  }

  void collect_events(const Function& fn, const Cfg& cfg) {
    events_.resize(cfg.blocks.size());
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      sink_ = &events_[b];
      if (b == cfg.entry)
        for (const auto& p : fn.params)
          if (!p.name.empty())
            emit_def(p.name, p.span, false, false, /*param=*/true);
      for (const auto& item : cfg.blocks[b].items) {
        switch (item.kind) {
          case CfgItemKind::kDecl:
            if (item.decl->init) {
              walk_expr(*item.decl->init, false);
              emit_def(item.decl->name, item.span);
            } else if (item.decl->type_text.find('[') != std::string::npos) {
              emit_def(item.decl->name, item.span, false, /*storage=*/true);
            } else {
              emit_def(item.decl->name, item.span, /*uninit=*/true);
            }
            break;
          case CfgItemKind::kExpr:
            walk_expr(*item.expr, false);
            break;
          case CfgItemKind::kReturn:
            if (item.expr) walk_expr(*item.expr, false);
            break;
        }
      }
    }
    sink_ = nullptr;
  }

  void number_definitions() {
    for (auto& block : events_)
      for (auto& ev : block)
        if (ev.is_def) {
          ev.def_id = static_cast<int>(defs_.size());
          defs_.push_back(ev);
        }
  }

  // ---- reaching definitions (forward, may) ---------------------------------

  void reach_fixpoint(const Cfg& cfg) {
    const std::size_t n_blocks = cfg.blocks.size();
    const std::size_t n_defs = defs_.size();
    std::vector<std::vector<bool>> gen(n_blocks,
                                       std::vector<bool>(n_defs, false));
    std::vector<std::vector<bool>> kills_var(
        n_blocks, std::vector<bool>(names_.size(), false));
    for (std::size_t b = 0; b < n_blocks; ++b)
      for (const auto& ev : events_[b])
        if (ev.is_def) {
          // A later def of the same variable in this block overwrites.
          for (std::size_t d = 0; d < n_defs; ++d)
            if (gen[b][d] && defs_[d].var == ev.var) gen[b][d] = false;
          gen[b][static_cast<std::size_t>(ev.def_id)] = true;
          kills_var[b][ev.var] = true;
        }

    reach_in_.assign(n_blocks, std::vector<bool>(n_defs, false));
    std::vector<std::vector<bool>> out(n_blocks,
                                       std::vector<bool>(n_defs, false));
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (!cfg.reachable[b]) continue;
        ++iterations_;
        std::vector<bool>& in = reach_in_[b];
        for (const std::size_t p : cfg.blocks[b].preds) {
          if (!cfg.reachable[p]) continue;
          for (std::size_t d = 0; d < n_defs; ++d)
            if (out[p][d] && !in[d]) in[d] = true;
        }
        for (std::size_t d = 0; d < n_defs; ++d) {
          const bool v =
              gen[b][d] || (in[d] && !kills_var[b][defs_[d].var]);
          if (v != out[b][d]) {
            out[b][d] = v;
            changed = true;
          }
        }
      }
    }
  }

  // ---- live variables (backward, may) --------------------------------------

  void live_fixpoint(const Cfg& cfg) {
    const std::size_t n_blocks = cfg.blocks.size();
    const std::size_t n_vars = names_.size();
    std::vector<std::vector<bool>> use(n_blocks,
                                       std::vector<bool>(n_vars, false));
    std::vector<std::vector<bool>> def(n_blocks,
                                       std::vector<bool>(n_vars, false));
    for (std::size_t b = 0; b < n_blocks; ++b)
      for (const auto& ev : events_[b]) {
        if (!ev.is_def) {
          if (!def[b][ev.var]) use[b][ev.var] = true;  // upward-exposed
        } else if (!ev.is_uninit) {
          def[b][ev.var] = true;
        }
      }

    live_out_.assign(n_blocks, std::vector<bool>(n_vars, false));
    std::vector<std::vector<bool>> in(n_blocks,
                                      std::vector<bool>(n_vars, false));
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = n_blocks; b-- > 0;) {
        if (!cfg.reachable[b]) continue;
        ++iterations_;
        std::vector<bool>& lo = live_out_[b];
        for (const std::size_t s : cfg.blocks[b].succs)
          for (std::size_t v = 0; v < n_vars; ++v)
            if (in[s][v] && !lo[v]) lo[v] = true;
        for (std::size_t v = 0; v < n_vars; ++v) {
          const bool value = use[b][v] || (lo[v] && !def[b][v]);
          if (value != in[b][v]) {
            in[b][v] = value;
            changed = true;
          }
        }
      }
    }
  }

  // ---- diagnostics ---------------------------------------------------------

  DataflowDiagnostics emit(const Cfg& cfg) {
    DataflowDiagnostics out;
    out.worklist_iterations = iterations_;

    std::vector<std::size_t> use_counts(names_.size(), 0);
    for (const auto& block : events_)
      for (const auto& ev : block)
        if (!ev.is_def) ++use_counts[ev.var];

    for (std::size_t v = 0; v < names_.size(); ++v)
      if (use_counts[v] == 0)
        (is_param_[v] ? out.unused_params : out.unused_locals)
            .push_back({names_[v], decl_spans_[v]});

    std::set<std::pair<SourceSpan, std::string>> ubi_seen;
    std::set<std::pair<SourceSpan, std::string>> dead_seen;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!cfg.reachable[b]) continue;

      // Forward scan: a use while the variable's uninit marker reaches it.
      std::vector<bool> may_uninit(names_.size(), false);
      for (std::size_t d = 0; d < defs_.size(); ++d)
        if (reach_in_[b][d] && defs_[d].is_uninit)
          may_uninit[defs_[d].var] = true;
      for (const auto& ev : events_[b]) {
        if (ev.is_def) {
          may_uninit[ev.var] = ev.is_uninit;
        } else if (may_uninit[ev.var]) {
          ubi_seen.insert({ev.span, names_[ev.var]});
        }
      }

      // Backward scan: a store the variable is not live after. Parameter
      // bindings are never stores the programmer wrote.
      std::vector<bool> live = live_out_[b];
      for (std::size_t i = events_[b].size(); i-- > 0;) {
        const VarEvent& ev = events_[b][i];
        if (!ev.is_def) {
          live[ev.var] = true;
          continue;
        }
        if (ev.is_uninit) continue;
        if (!live[ev.var] && !ev.is_storage && !ev.is_param &&
            use_counts[ev.var] > 0)
          dead_seen.insert({ev.span, names_[ev.var]});
        live[ev.var] = false;
      }
    }
    for (const auto& [span, name] : ubi_seen)
      out.uses_before_init.push_back({name, span});
    for (const auto& [span, name] : dead_seen)
      out.dead_stores.push_back({name, span});

    for (const std::size_t b : unreachable_code_blocks(cfg))
      out.unreachable_spans.push_back(cfg.blocks[b].items.front().span);
    std::sort(out.unreachable_spans.begin(), out.unreachable_spans.end());

    for (const auto& block : events_)
      for (const auto& ev : block) {
        if (ev.is_def && !ev.is_uninit && !ev.is_storage && !ev.is_param)
          ++out.n_defs;
        if (!ev.is_def) ++out.n_uses;
      }
    return out;
  }

  std::map<std::string, std::size_t> var_ids_;
  std::vector<std::string> names_;
  std::vector<bool> is_param_;
  std::vector<SourceSpan> decl_spans_;         // declarator span per variable
  std::vector<std::vector<VarEvent>> events_;  // per block, in order
  std::vector<VarEvent>* sink_ = nullptr;      // block receiving emitted events
  std::vector<VarEvent> defs_;                 // def table, by def_id
  std::vector<std::vector<bool>> reach_in_;
  std::vector<std::vector<bool>> live_out_;
  std::size_t iterations_ = 0;
};

}  // namespace

DataflowDiagnostics analyze_dataflow(const Function& fn, const Cfg& cfg) {
  return DataflowEngine{}.run(fn, cfg);
}

DataflowDiagnostics analyze_dataflow(const Function& fn) {
  const Cfg cfg = build_cfg(fn);
  return analyze_dataflow(fn, cfg);
}

}  // namespace decompeval::lang
