#include "lang/source_map.h"

#include <algorithm>

namespace decompeval::lang {

SourceMap::SourceMap(std::string_view source) : source_(source) {
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < source_.size(); ++i) {
    if (source_[i] == '\n') line_starts_.push_back(i + 1);
  }
}

LineCol SourceMap::to_line_col(std::size_t offset) const {
  offset = std::min(offset, source_.size());
  const auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(),
                                   offset);
  const std::size_t idx =
      static_cast<std::size_t>(it - line_starts_.begin()) - 1;
  LineCol out;
  out.line = static_cast<int>(idx) + 1;
  out.col = static_cast<int>(offset - line_starts_[idx]) + 1;
  return out;
}

std::size_t SourceMap::to_offset(int line, int col) const {
  if (line < 1) line = 1;
  if (line > line_count()) line = line_count();
  const std::size_t idx = static_cast<std::size_t>(line - 1);
  const std::size_t start = line_starts_[idx];
  const std::size_t stop = idx + 1 < line_starts_.size()
                               ? line_starts_[idx + 1] - 1  // the newline
                               : source_.size();
  if (col < 1) col = 1;
  const std::size_t offset = start + static_cast<std::size_t>(col - 1);
  return std::min(offset, stop);
}

std::string_view SourceMap::line_text(int line) const {
  if (line < 1 || line > line_count()) return {};
  const std::size_t idx = static_cast<std::size_t>(line - 1);
  const std::size_t start = line_starts_[idx];
  const std::size_t stop = idx + 1 < line_starts_.size()
                               ? line_starts_[idx + 1] - 1
                               : source_.size();
  return std::string_view(source_).substr(start, stop - start);
}

}  // namespace decompeval::lang
