#include "lang/lexer.h"

#include <cctype>

#include "util/check.h"

namespace decompeval::lang {

namespace {
bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t line_start = 0;  // offset of the first byte of `line`
  std::size_t i = 0;
  const std::size_t n = source.size();

  // Span over [start, i) anchored at the line/column tracked when the
  // token began. Columns are 1-based byte counts within the line.
  const auto span_from = [&](std::size_t start, int start_line,
                             std::size_t start_line_start) {
    SourceSpan s;
    s.begin = start;
    s.end = i;
    s.line = start_line;
    s.col = static_cast<int>(start - start_line_start) + 1;
    return s;
  };
  const auto emit = [&](TokenKind kind, std::size_t start) {
    out.push_back({kind, std::string(source.substr(start, i - start)),
                   span_from(start, line, line_start)});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      bool closed = false;
      while (i + 1 < n) {
        if (source[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        if (source[i] == '*' && source[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        ++i;
      }
      DE_EXPECTS_MSG(closed, "unterminated block comment");
      continue;
    }
    // Identifiers / keywords (treated uniformly; parser decides).
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      emit(TokenKind::kIdentifier, start);
      continue;
    }
    // Numbers, incl. hex and suffixes like 0xffLL, 8LL, 1u.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      if (c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(source[i]))) ++i;
      } else {
        while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                         source[i] == '.'))
          ++i;
      }
      while (i < n && (source[i] == 'L' || source[i] == 'l' || source[i] == 'U' ||
                       source[i] == 'u' || source[i] == 'f' || source[i] == 'F'))
        ++i;
      emit(TokenKind::kNumber, start);
      continue;
    }
    // String literals. The grammar keeps them single-line, so the line
    // counter never advances inside one.
    if (c == '"') {
      const std::size_t start = i++;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      DE_EXPECTS_MSG(i < n, "unterminated string literal");
      ++i;
      emit(TokenKind::kString, start);
      continue;
    }
    if (c == '\'') {
      const std::size_t start = i++;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      DE_EXPECTS_MSG(i < n, "unterminated char literal");
      ++i;
      emit(TokenKind::kCharLiteral, start);
      continue;
    }
    // Punctuation / operators, longest match first.
    static const std::string_view three_char[] = {"<<=", ">>=", "...", "->*"};
    static const std::string_view two_char[] = {
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
    bool matched = false;
    if (i + 2 < n) {
      const std::string_view triple = source.substr(i, 3);
      for (const std::string_view op : three_char) {
        if (triple == op) {
          const std::size_t start = i;
          i += 3;
          emit(TokenKind::kPunct, start);
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 1 < n) {
      const std::string_view pair = source.substr(i, 2);
      for (const std::string_view op : two_char) {
        if (pair == op) {
          const std::size_t start = i;
          i += 2;
          emit(TokenKind::kPunct, start);
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      const std::size_t start = i;
      ++i;
      emit(TokenKind::kPunct, start);
    }
  }
  SourceSpan eof;
  eof.begin = n;
  eof.end = n;
  eof.line = line;
  eof.col = static_cast<int>(n - line_start) + 1;
  out.push_back({TokenKind::kEndOfFile, "", eof});
  return out;
}

}  // namespace decompeval::lang
