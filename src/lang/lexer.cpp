#include "lang/lexer.h"

#include <cctype>

#include "util/check.h"

namespace decompeval::lang {

namespace {
bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      bool closed = false;
      while (i + 1 < n) {
        if (source[i] == '\n') ++line;
        if (source[i] == '*' && source[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        ++i;
      }
      DE_EXPECTS_MSG(closed, "unterminated block comment");
      continue;
    }
    // Identifiers / keywords (treated uniformly; parser decides).
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      out.push_back({TokenKind::kIdentifier,
                     std::string(source.substr(start, i - start)), line});
      continue;
    }
    // Numbers, incl. hex and suffixes like 0xffLL, 8LL, 1u.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      if (c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(source[i]))) ++i;
      } else {
        while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                         source[i] == '.'))
          ++i;
      }
      while (i < n && (source[i] == 'L' || source[i] == 'l' || source[i] == 'U' ||
                       source[i] == 'u' || source[i] == 'f' || source[i] == 'F'))
        ++i;
      out.push_back({TokenKind::kNumber,
                     std::string(source.substr(start, i - start)), line});
      continue;
    }
    // String literals.
    if (c == '"') {
      std::size_t start = i++;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      DE_EXPECTS_MSG(i < n, "unterminated string literal");
      ++i;
      out.push_back({TokenKind::kString,
                     std::string(source.substr(start, i - start)), line});
      continue;
    }
    if (c == '\'') {
      std::size_t start = i++;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      DE_EXPECTS_MSG(i < n, "unterminated char literal");
      ++i;
      out.push_back({TokenKind::kCharLiteral,
                     std::string(source.substr(start, i - start)), line});
      continue;
    }
    // Punctuation / operators, longest match first.
    static const std::string_view three_char[] = {"<<=", ">>=", "...", "->*"};
    static const std::string_view two_char[] = {
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
    bool matched = false;
    if (i + 2 < n) {
      const std::string_view triple = source.substr(i, 3);
      for (const std::string_view op : three_char) {
        if (triple == op) {
          out.push_back({TokenKind::kPunct, std::string(op), line});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 1 < n) {
      const std::string_view pair = source.substr(i, 2);
      for (const std::string_view op : two_char) {
        if (pair == op) {
          out.push_back({TokenKind::kPunct, std::string(op), line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      out.push_back({TokenKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  out.push_back({TokenKind::kEndOfFile, "", line});
  return out;
}

}  // namespace decompeval::lang
