#include "lang/printer.h"

#include <sstream>

namespace decompeval::lang {

namespace {

void print_expr(const Expr& e, std::ostream& os);

// Prints a child with parentheses whenever it is itself a compound
// expression; conservative but always re-parseable.
void print_child(const Expr& e, std::ostream& os) {
  const bool needs_parens =
      e.kind == ExprKind::kBinary || e.kind == ExprKind::kTernary ||
      e.kind == ExprKind::kCast || e.kind == ExprKind::kUnary;
  if (needs_parens) os << '(';
  print_expr(e, os);
  if (needs_parens) os << ')';
}

void print_expr(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kIdentifier:
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kCharLiteral:
      os << e.text;
      return;
    case ExprKind::kUnary:
      if (e.text == "post++" || e.text == "post--") {
        print_child(*e.children[0], os);
        os << e.text.substr(4);
      } else if (e.text == "sizeof") {
        os << "sizeof(";
        print_expr(*e.children[0], os);
        os << ')';
      } else {
        os << e.text;
        print_child(*e.children[0], os);
      }
      return;
    case ExprKind::kBinary:
      print_child(*e.children[0], os);
      os << ' ' << e.text << ' ';
      print_child(*e.children[1], os);
      return;
    case ExprKind::kTernary:
      print_child(*e.children[0], os);
      os << " ? ";
      print_child(*e.children[1], os);
      os << " : ";
      print_child(*e.children[2], os);
      return;
    case ExprKind::kCall:
      print_child(*e.children[0], os);
      os << '(';
      for (std::size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) os << ", ";
        print_expr(*e.children[i], os);
      }
      os << ')';
      return;
    case ExprKind::kIndex:
      print_child(*e.children[0], os);
      os << '[';
      print_expr(*e.children[1], os);
      os << ']';
      return;
    case ExprKind::kMember:
      print_child(*e.children[0], os);
      os << e.text << e.member_name;
      return;
    case ExprKind::kCast:
      os << '(' << e.type_text << ')';
      print_child(*e.children[0], os);
      return;
  }
}

std::string indent(int depth) { return std::string(depth * 2, ' '); }

// Splits a declarator type of the form "base *[dims]" into the base part
// printed before the name and the array suffix printed after it.
void print_declarator(const Declarator& d, std::ostream& os) {
  std::string type = d.type_text;
  std::string suffix;
  const std::size_t bracket = type.find('[');
  if (bracket != std::string::npos) {
    suffix = type.substr(bracket);
    type = type.substr(0, bracket);
  }
  while (!type.empty() && type.back() == ' ') type.pop_back();
  os << type << ' ' << d.name << suffix;
  if (d.init) {
    os << " = ";
    print_expr(*d.init, os);
  }
}

void print_stmt(const Stmt& s, std::ostream& os, int depth) {
  switch (s.kind) {
    case StmtKind::kBlock:
      os << indent(depth) << "{\n";
      for (const auto& b : s.body) print_stmt(*b, os, depth + 1);
      os << indent(depth) << "}\n";
      return;
    case StmtKind::kDecl: {
      os << indent(depth);
      for (std::size_t i = 0; i < s.decls.size(); ++i) {
        if (i > 0) os << ", ";
        if (i == 0) {
          print_declarator(s.decls[i], os);
        } else {
          os << s.decls[i].name;
          if (s.decls[i].init) {
            os << " = ";
            print_expr(*s.decls[i].init, os);
          }
        }
      }
      os << ";\n";
      return;
    }
    case StmtKind::kExpr:
      os << indent(depth);
      print_expr(*s.exprs[0], os);
      os << ";\n";
      return;
    case StmtKind::kIf:
      os << indent(depth) << "if (";
      print_expr(*s.exprs[0], os);
      os << ")\n";
      print_stmt(*s.body[0], os, s.body[0]->kind == StmtKind::kBlock ? depth : depth + 1);
      if (s.body.size() > 1) {
        os << indent(depth) << "else\n";
        print_stmt(*s.body[1], os,
                   s.body[1]->kind == StmtKind::kBlock ? depth : depth + 1);
      }
      return;
    case StmtKind::kWhile:
      os << indent(depth) << "while (";
      print_expr(*s.exprs[0], os);
      os << ")\n";
      print_stmt(*s.body[0], os,
                 s.body[0]->kind == StmtKind::kBlock ? depth : depth + 1);
      return;
    case StmtKind::kDoWhile:
      os << indent(depth) << "do\n";
      print_stmt(*s.body[0], os,
                 s.body[0]->kind == StmtKind::kBlock ? depth : depth + 1);
      os << indent(depth) << "while (";
      print_expr(*s.exprs[0], os);
      os << ");\n";
      return;
    case StmtKind::kFor: {
      os << indent(depth) << "for (";
      if (!s.decls.empty()) {
        print_declarator(s.decls[0], os);
      } else if (s.exprs[0]) {
        print_expr(*s.exprs[0], os);
      }
      os << "; ";
      if (s.exprs[1]) print_expr(*s.exprs[1], os);
      os << "; ";
      if (s.exprs[2]) print_expr(*s.exprs[2], os);
      os << ")\n";
      print_stmt(*s.body[0], os,
                 s.body[0]->kind == StmtKind::kBlock ? depth : depth + 1);
      return;
    }
    case StmtKind::kReturn:
      os << indent(depth) << "return";
      if (!s.exprs.empty() && s.exprs[0]) {
        os << ' ';
        print_expr(*s.exprs[0], os);
      }
      os << ";\n";
      return;
    case StmtKind::kBreak:
      os << indent(depth) << "break;\n";
      return;
    case StmtKind::kContinue:
      os << indent(depth) << "continue;\n";
      return;
    case StmtKind::kEmpty:
      os << indent(depth) << ";\n";
      return;
  }
}

}  // namespace

std::string to_source(const Expr& e) {
  std::ostringstream os;
  print_expr(e, os);
  return os.str();
}

std::string to_source(const Function& fn) {
  std::ostringstream os;
  os << fn.return_type << ' ' << fn.name << '(';
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i > 0) os << ", ";
    const std::string& type = fn.params[i].type_text;
    const std::string& name = fn.params[i].name;
    const std::size_t star = type.find("(*)");
    if (star != std::string::npos && !name.empty()) {
      // Re-embed the name inside a function-pointer declarator:
      // "int (*)(void *)" + "visit" → "int (*visit)(void *)".
      os << type.substr(0, star + 2) << name << type.substr(star + 2);
    } else {
      os << type;
      if (!name.empty()) os << ' ' << name;
    }
  }
  os << ")\n";
  if (fn.body) print_stmt(*fn.body, os, 0);
  return os.str();
}

}  // namespace decompeval::lang
