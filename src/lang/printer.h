// AST → source text. Round-trips through the parser (expressions are
// parenthesized conservatively), which lets transformation passes
// (renaming, retyping) re-emit compilable snippet text.
#pragma once

#include <string>

#include "lang/ast.h"

namespace decompeval::lang {

std::string to_source(const Function& fn);
std::string to_source(const Expr& e);

}  // namespace decompeval::lang
