// Byte-offset source spans.
//
// Every position the language layer reports — token positions, AST node
// extents, CFG items, dataflow facts, lint diagnostics — is a half-open
// byte range [begin, end) into the snippet source, paired with the
// 1-based (line, col) of the first byte. Offsets are the ground truth
// (an annotation front-end highlights `source.substr(begin, end-begin)`);
// line/col are carried alongside so human-facing messages never need a
// lookup table. `SourceMap` (source_map.h) converts between the two.
#pragma once

#include <algorithm>
#include <compare>
#include <cstddef>

namespace decompeval::lang {

struct SourceSpan {
  std::size_t begin = 0;  // byte offset of the first character
  std::size_t end = 0;    // one past the last character
  int line = 0;           // 1-based line of `begin` (0 = unknown/empty)
  int col = 0;            // 1-based column of `begin` (0 = unknown/empty)

  std::size_t length() const { return end > begin ? end - begin : 0; }
  bool valid() const { return line > 0; }

  friend auto operator<=>(const SourceSpan&, const SourceSpan&) = default;
};

/// Smallest span covering both inputs. An invalid (default) operand is
/// ignored so parsers can fold over optional children.
inline SourceSpan cover(const SourceSpan& a, const SourceSpan& b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  SourceSpan out = a.begin <= b.begin ? a : b;
  out.end = std::max(a.end, b.end);
  return out;
}

}  // namespace decompeval::lang
