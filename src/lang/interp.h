// Interpreter for the mini-C subset.
//
// Why a C interpreter in an evaluation framework: the study's three code
// variants per snippet (original / Hex-Rays / DIRTY) are *transcriptions*,
// and every analysis assumes they compute the same function. The
// interpreter makes that checkable — tests execute all variants of every
// snippet on shared machine states and assert identical results and memory
// effects. It also makes the comprehension questions objective: "if the
// function is called with arguments X, what is the value of Y?" is
// evaluated, not asserted.
//
// Model: every value is a 64-bit integer; memory is a sparse
// byte-addressable space; struct members resolve through registered type
// layouts (offset + width), which is exactly how decompiled code addresses
// them (`*(_DWORD *)(a1 + 16)` ≡ `a->used` under layout used@16:4).
// Function pointers are first-class: host callbacks registered with the
// machine receive an id that flows through the program like any value.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.h"

namespace decompeval::lang {

/// Thrown on runtime errors: step-limit exhaustion, unknown identifier,
/// store through a bad width, missing layout/builtin.
class InterpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Struct-member layout: byte offset, access width, and the member's
/// static type (drives pointer arithmetic through expressions like
/// `a->data[ipos]`).
struct MemberLayout {
  std::uint64_t offset = 0;
  std::size_t width = 8;
  std::string type_text = "__int64";
};

class Machine {
 public:
  /// Host callback: receives the machine and evaluated arguments.
  using Builtin =
      std::function<std::int64_t(Machine&, const std::vector<std::int64_t>&)>;

  Machine();

  // ---- memory ----
  /// Allocates a zero-initialized block, returns its base address.
  std::uint64_t allocate(std::size_t bytes);
  /// Loads `width` ∈ {1,2,4,8} bytes, zero-extended (sign_extend for the
  /// signed narrow loads the decompiler writes as (int)/(char) casts).
  std::int64_t load(std::uint64_t address, std::size_t width,
                    bool sign_extend = false) const;
  void store(std::uint64_t address, std::size_t width, std::int64_t value);
  /// Snapshot of every written byte (address → value), for equivalence
  /// comparisons between program variants.
  std::map<std::uint64_t, std::uint8_t> memory_snapshot() const;

  // ---- environment ----
  void register_builtin(const std::string& name, Builtin fn);
  /// Registers a callable value (function pointer); the returned id can be
  /// passed as an argument and called through any expression.
  std::int64_t register_function_value(Builtin fn);
  /// Registers a struct layout under one or more type names.
  void register_layout(const std::string& type_name,
                       std::map<std::string, MemberLayout> members);

  // ---- execution ----
  /// Calls `fn` with the given argument values; returns its return value
  /// (0 for void functions that fall off the end).
  std::int64_t call(const Function& fn, const std::vector<std::int64_t>& args);

  std::size_t step_limit = 1'000'000;
  std::size_t steps_executed() const { return steps_; }

  /// Byte width of a type spelling ("int" → 4, "_QWORD" → 8, "char" → 1,
  /// any pointer → 8). Unknown names default to 8.
  static std::size_t width_of(const std::string& type_text);
  /// Width of the pointee of a pointer type spelling ("_QWORD *" → 8,
  /// "char *" → 1, "unsigned char *" → 1, "char **" → 8).
  static std::size_t pointee_width_of(const std::string& type_text);

 private:
  friend class Evaluator;

  std::unordered_map<std::uint64_t, std::uint8_t> memory_;
  std::uint64_t next_address_ = 0x1000;
  std::unordered_map<std::string, Builtin> builtins_;
  std::vector<Builtin> function_values_;
  std::unordered_map<std::string, std::map<std::string, MemberLayout>>
      layouts_;
  std::size_t steps_ = 0;
};

}  // namespace decompeval::lang
