// Recursive-descent parser for the C subset produced by decompilers.
//
// Handles declarations, the full statement set in ast.h, and a complete
// expression precedence ladder including casts, which Hex-Rays output uses
// heavily (e.g. `*(_QWORD *)(8LL * index + *(_QWORD *)(a1 + 8))`).
//
// Cast-vs-parenthesized-expression ambiguity is resolved with the usual
// pragmatic heuristic: a parenthesized token run is a type if it starts
// with a known type name (builtins, registered typedefs, `*_t`-suffixed or
// `_`-prefixed Hex-Rays names) and consists only of type-ish tokens.
#pragma once

#include <set>
#include <string>
#include <string_view>

#include "lang/ast.h"

namespace decompeval::lang {

/// Thrown on malformed input, with the offending line number in the text.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ParseOptions {
  /// Additional names to treat as type names (per-snippet typedefs such as
  /// `array_t_0`, `tree234`, `cmpfn234`, `buffer`, `data_unset`).
  std::set<std::string> typedef_names;
};

/// Parses a single function definition.
Function parse_function(std::string_view source,
                        const ParseOptions& options = {});

/// True if `name` looks like a type name to the heuristic.
bool is_type_like_name(const std::string& name,
                       const std::set<std::string>& typedefs);

}  // namespace decompeval::lang
