#include "lang/analysis.h"

#include <functional>

namespace decompeval::lang {

namespace {

// ---- Subtree signatures ---------------------------------------------------

std::string serialize_expr(const Expr& e, std::map<std::string, int>& out);

std::string expr_label(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIdentifier:
      return "ID";
    case ExprKind::kNumber:
    case ExprKind::kString:
    case ExprKind::kCharLiteral:
      return "LIT";
    case ExprKind::kUnary:
      return "un:" + e.text;
    case ExprKind::kBinary:
      return "bin:" + e.text;
    case ExprKind::kTernary:
      return "ternary";
    case ExprKind::kCall:
      return "call";
    case ExprKind::kIndex:
      return "index";
    case ExprKind::kMember:
      return "mem:" + e.text + ":" + e.member_name;
    case ExprKind::kCast:
      return "cast";
  }
  return "?";
}

std::string serialize_expr(const Expr& e, std::map<std::string, int>& out) {
  std::string s = "(" + expr_label(e);
  for (const auto& c : e.children) {
    s += ' ';
    s += c ? serialize_expr(*c, out) : "_";
  }
  s += ')';
  ++out[s];
  return s;
}

std::string serialize_stmt(const Stmt& s, std::map<std::string, int>& out) {
  std::string text = "{";
  switch (s.kind) {
    case StmtKind::kBlock: text += "block"; break;
    case StmtKind::kDecl: text += "decl"; break;
    case StmtKind::kExpr: text += "expr"; break;
    case StmtKind::kIf: text += "if"; break;
    case StmtKind::kWhile: text += "while"; break;
    case StmtKind::kDoWhile: text += "dowhile"; break;
    case StmtKind::kFor: text += "for"; break;
    case StmtKind::kReturn: text += "return"; break;
    case StmtKind::kBreak: text += "break"; break;
    case StmtKind::kContinue: text += "continue"; break;
    case StmtKind::kEmpty: text += "empty"; break;
  }
  for (const auto& d : s.decls) {
    text += " [d";
    if (d.init) {
      text += '=';
      text += serialize_expr(*d.init, out);
    }
    text += ']';
  }
  for (const auto& e : s.exprs) {
    text += ' ';
    text += e ? serialize_expr(*e, out) : "_";
  }
  for (const auto& b : s.body) {
    text += ' ';
    text += b ? serialize_stmt(*b, out) : "_";
  }
  text += '}';
  ++out[text];
  return text;
}

// ---- Dataflow --------------------------------------------------------------

class DataflowWalker {
 public:
  std::set<DataflowEdge> run(const Function& fn) {
    for (const auto& p : fn.params)
      if (!p.name.empty()) define(p.name);
    if (fn.body) walk_stmt(*fn.body);
    return edges_;
  }

 private:
  int next_position() { return position_counter_++; }

  void define(const std::string& name) {
    last_def_[name] = next_position();
  }

  void use(const std::string& name) {
    const int pos = next_position();
    const auto it = last_def_.find(name);
    if (it != last_def_.end()) edges_.insert({pos, it->second});
  }

  // Walks an expression; `lvalue_root` marks the expression currently being
  // assigned to, whose base identifier becomes a def rather than a use.
  void walk_expr(const Expr& e, bool is_def_target = false) {
    switch (e.kind) {
      case ExprKind::kIdentifier:
        if (is_def_target) define(e.text);
        else use(e.text);
        return;
      case ExprKind::kBinary: {
        const bool is_assign = !e.text.empty() && e.text.back() == '=' &&
                               e.text != "==" && e.text != "!=" &&
                               e.text != "<=" && e.text != ">=";
        if (is_assign) {
          // Compound assignments read the target first.
          if (e.text != "=") walk_expr(*e.children[0], false);
          walk_expr(*e.children[1], false);  // RHS evaluated before the def
          walk_expr(*e.children[0], true);
          return;
        }
        walk_expr(*e.children[0], false);
        walk_expr(*e.children[1], false);
        return;
      }
      case ExprKind::kUnary: {
        const bool is_incdec = e.text == "++" || e.text == "--" ||
                               e.text == "post++" || e.text == "post--";
        if (is_incdec) {
          walk_expr(*e.children[0], false);  // read
          walk_expr(*e.children[0], true);   // write
          return;
        }
        walk_expr(*e.children[0], false);
        return;
      }
      case ExprKind::kMember:
      case ExprKind::kCast:
        // A write through a member/deref still reads the base pointer.
        walk_expr(*e.children[0], false);
        return;
      case ExprKind::kIndex:
        walk_expr(*e.children[0], false);
        walk_expr(*e.children[1], false);
        return;
      case ExprKind::kCall:
      case ExprKind::kTernary:
        for (const auto& c : e.children)
          if (c) walk_expr(*c, false);
        return;
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kCharLiteral:
        return;
    }
  }

  void walk_stmt(const Stmt& s) {
    for (const auto& d : s.decls) {
      if (d.init) {
        walk_expr(*d.init, false);
        define(d.name);
      }
      // Uninitialized declarations do not produce a def; the first
      // assignment does.
    }
    for (const auto& e : s.exprs)
      if (e) walk_expr(*e, false);
    for (const auto& b : s.body)
      if (b) walk_stmt(*b);
  }

  std::map<std::string, int> last_def_;
  std::set<DataflowEdge> edges_;
  int position_counter_ = 0;
};

// ---- Features ---------------------------------------------------------------

class FeatureWalker {
 public:
  StructuralFeatures run(const Function& fn) {
    for (const auto& p : fn.params)
      if (!p.name.empty()) features_.identifiers_used.insert(p.name);
    if (fn.body) walk_stmt(*fn.body, 0);
    return std::move(features_);
  }

 private:
  void walk_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdentifier:
        features_.identifiers_used.insert(e.text);
        break;
      case ExprKind::kNumber:
        ++features_.numeric_literal_count;
        break;
      case ExprKind::kString:
        ++features_.string_literal_count;
        break;
      case ExprKind::kCall:
        ++features_.call_count;
        if (e.children[0] && e.children[0]->kind == ExprKind::kIdentifier)
          features_.callee_names.push_back(e.children[0]->text);
        break;
      case ExprKind::kCast:
        ++features_.cast_count;
        break;
      case ExprKind::kUnary:
        if (e.text == "*") ++features_.pointer_deref_count;
        break;
      default:
        break;
    }
    for (const auto& c : e.children)
      if (c) walk_expr(*c);
  }

  void walk_stmt(const Stmt& s, int depth) {
    int child_depth = depth;
    switch (s.kind) {
      case StmtKind::kIf:
        ++features_.branch_count;
        child_depth = depth + 1;
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
      case StmtKind::kFor:
        ++features_.loop_count;
        child_depth = depth + 1;
        break;
      case StmtKind::kReturn:
        ++features_.return_count;
        break;
      default:
        break;
    }
    if (child_depth > features_.max_nesting_depth)
      features_.max_nesting_depth = child_depth;
    for (const auto& d : s.decls) {
      features_.identifiers_used.insert(d.name);
      if (d.init) walk_expr(*d.init);
    }
    for (const auto& e : s.exprs)
      if (e) walk_expr(*e);
    for (const auto& b : s.body)
      if (b) walk_stmt(*b, child_depth);
  }

  StructuralFeatures features_;
};

void collect_identifiers(const Expr& e, std::vector<std::string>& out) {
  if (e.kind == ExprKind::kIdentifier) out.push_back(e.text);
  for (const auto& c : e.children)
    if (c) collect_identifiers(*c, out);
}

void collect_identifiers(const Stmt& s, std::vector<std::string>& out) {
  for (const auto& d : s.decls) {
    out.push_back(d.name);
    if (d.init) collect_identifiers(*d.init, out);
  }
  for (const auto& e : s.exprs)
    if (e) collect_identifiers(*e, out);
  for (const auto& b : s.body)
    if (b) collect_identifiers(*b, out);
}

}  // namespace

std::map<std::string, int> subtree_signatures(const Function& fn) {
  std::map<std::string, int> out;
  if (fn.body) serialize_stmt(*fn.body, out);
  return out;
}

std::set<DataflowEdge> dataflow_edges(const Function& fn) {
  return DataflowWalker{}.run(fn);
}

StructuralFeatures structural_features(const Function& fn) {
  return FeatureWalker{}.run(fn);
}

std::vector<std::string> identifier_occurrences(const Function& fn) {
  std::vector<std::string> out;
  for (const auto& p : fn.params)
    if (!p.name.empty()) out.push_back(p.name);
  if (fn.body) collect_identifiers(*fn.body, out);
  return out;
}

}  // namespace decompeval::lang
