#include "lang/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "lang/dataflow.h"
#include "lang/passes.h"

namespace decompeval::lang {

namespace {

bool digits_from(const std::string& s, std::size_t pos) {
  if (pos >= s.size()) return false;
  for (std::size_t i = pos; i < s.size(); ++i)
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  return true;
}

// Appends artifact notes for a declared (name, type) pair.
void check_declaration(const std::string& name, const std::string& type_text,
                       SourceSpan span, std::vector<LintDiagnostic>& out) {
  if (is_placeholder_name(name))
    out.push_back({"placeholder-name", LintSeverity::kNote, name, span,
                   "'" + name + "' is a decompiler placeholder name"});
  if (is_flat_type(type_text))
    out.push_back({"flat-type-decl", LintSeverity::kNote, type_text, span,
                   "'" + name + "' is declared with flat type '" + type_text +
                       "'"});
}

void walk_expr_artifacts(const Expr& e, std::vector<LintDiagnostic>& out) {
  if (e.kind == ExprKind::kCast && is_flat_type(e.type_text))
    out.push_back({"flat-type-cast", LintSeverity::kNote, e.type_text, e.span,
                   "cast through flat type '" + e.type_text + "'"});
  for (const auto& c : e.children)
    if (c) walk_expr_artifacts(*c, out);
}

void walk_stmt_artifacts(const Stmt& s, std::vector<LintDiagnostic>& out) {
  for (const auto& d : s.decls) {
    check_declaration(d.name, d.type_text,
                      d.span.valid() ? d.span : s.span, out);
    if (d.init) walk_expr_artifacts(*d.init, out);
  }
  for (const auto& e : s.exprs)
    if (e) walk_expr_artifacts(*e, out);
  for (const auto& b : s.body)
    if (b) walk_stmt_artifacts(*b, out);
}

}  // namespace

bool is_placeholder_name(const std::string& name) {
  if (name.size() < 2) return false;
  return (name[0] == 'a' || name[0] == 'v') && digits_from(name, 1);
}

bool is_flat_type(const std::string& type_text) {
  for (const char* marker : {"_QWORD", "_DWORD", "_WORD", "_BYTE", "__int"})
    if (type_text.find(marker) != std::string::npos) return true;
  return false;
}

std::vector<LintDiagnostic> lint_function(const Function& fn,
                                          const LintOptions& options) {
  std::vector<LintDiagnostic> out;

  const bool needs_cfg = options.dataflow_checks || options.pass_checks;
  const Cfg cfg = needs_cfg ? build_cfg(fn) : Cfg{};

  if (options.dataflow_checks) {
    const DataflowDiagnostics flow = analyze_dataflow(fn, cfg);
    for (const auto& u : flow.uses_before_init)
      out.push_back({"use-before-init", LintSeverity::kError, u.name, u.span,
                     "'" + u.name +
                         "' may be read before it is assigned on some path"});
    for (const auto& d : flow.dead_stores)
      out.push_back({"dead-store", LintSeverity::kWarning, d.name, d.span,
                     "value assigned to '" + d.name + "' is never read"});
    for (const auto& p : flow.unused_params)
      out.push_back({"unused-param", LintSeverity::kWarning, p.name, p.span,
                     "parameter '" + p.name + "' is never used"});
    for (const auto& l : flow.unused_locals)
      out.push_back({"unused-local", LintSeverity::kWarning, l.name, l.span,
                     "local '" + l.name + "' is never used"});
    for (const SourceSpan& span : flow.unreachable_spans)
      out.push_back({"unreachable-code", LintSeverity::kWarning, "", span,
                     "statement is unreachable"});
  }

  if (options.pass_checks) {
    for (auto& d : constant_branch_diagnostics(fn, cfg))
      out.push_back(std::move(d));
    for (auto& d : copy_chain_diagnostics(fn)) out.push_back(std::move(d));
    for (auto& d : type_flow_diagnostics(fn)) out.push_back(std::move(d));
  }

  if (options.artifact_checks) {
    for (const auto& p : fn.params)
      check_declaration(p.name, p.type_text, p.span, out);
    if (is_flat_type(fn.return_type))
      out.push_back({"flat-type-decl", LintSeverity::kNote, fn.return_type,
                     fn.name_span,
                     "return type '" + fn.return_type + "' is flat"});
    if (fn.body) walk_stmt_artifacts(*fn.body, out);
  }

  std::sort(out.begin(), out.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return std::tie(a.span, a.code, a.symbol) <
                     std::tie(b.span, b.code, b.symbol);
            });
  return out;
}

std::string to_string(const LintDiagnostic& d) {
  std::ostringstream os;
  if (d.span.valid())
    os << "line " << d.span.line << ":" << d.span.col << ": ";
  os << d.code << ": " << d.message;
  return os.str();
}

std::size_t artifact_count(const std::vector<LintDiagnostic>& diagnostics) {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == LintSeverity::kNote) ++n;
  return n;
}

}  // namespace decompeval::lang
