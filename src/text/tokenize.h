// Identifier and code tokenization.
//
// Intrinsic metrics in the name-recovery literature operate on identifier
// *subtokens*: `buffer_append_path_len` → {buffer, append, path, len} and
// `arrayGetIndex` → {array, get, index}. This module provides that
// splitting plus simple code tokenization for the BLEU-family metrics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace decompeval::text {

/// Splits an identifier into lowercase subtokens on underscores, digit
/// boundaries and camelCase humps. "SSL_ctx2Free" → {ssl, ctx, 2, free}.
std::vector<std::string> split_identifier(std::string_view identifier);

/// Tokenizes a line of C-like code into identifiers, numbers, and operator
/// punctuation (each operator char run split into maximal operators).
std::vector<std::string> tokenize_code(std::string_view code);

/// All contiguous n-grams of `tokens` joined by '\x1f'; n >= 1. Returns an
/// empty vector when tokens.size() < n.
std::vector<std::string> ngrams(const std::vector<std::string>& tokens,
                                std::size_t n);

/// Character n-grams of a string (used by Jaccard on short names).
std::vector<std::string> char_ngrams(std::string_view s, std::size_t n);

}  // namespace decompeval::text
