#include "text/bleu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "text/tokenize.h"
#include "util/check.h"

namespace decompeval::text {

namespace {

struct OrderCounts {
  double matched = 0.0;
  double total = 0.0;
};

void accumulate_order(const std::vector<std::string>& candidate,
                      const std::vector<std::string>& reference,
                      std::size_t order, OrderCounts& counts) {
  const auto cand_grams = ngrams(candidate, order);
  if (cand_grams.empty()) return;
  std::unordered_map<std::string, int> ref_counts;
  for (const auto& g : ngrams(reference, order)) ++ref_counts[g];
  std::unordered_map<std::string, int> cand_counts;
  for (const auto& g : cand_grams) ++cand_counts[g];
  double matched = 0.0;
  for (const auto& [gram, count] : cand_counts) {
    const auto it = ref_counts.find(gram);
    if (it != ref_counts.end())
      matched += std::min(count, it->second);  // clipped counts
  }
  counts.matched += matched;
  counts.total += static_cast<double>(cand_grams.size());
}

BleuScore finish(const std::vector<OrderCounts>& counts,
                 double candidate_length, double reference_length,
                 const BleuOptions& options) {
  BleuScore score;
  score.precisions.resize(options.max_order, 0.0);
  double log_sum = 0.0;
  std::size_t effective_orders = 0;
  for (std::size_t k = 0; k < options.max_order; ++k) {
    double num = counts[k].matched;
    double den = counts[k].total;
    if (options.smooth && k > 0) {
      num += 1.0;
      den += 1.0;
    }
    if (den <= 0.0) continue;  // segment shorter than the order
    score.precisions[k] = num / den;
    ++effective_orders;
    if (score.precisions[k] <= 0.0) {
      log_sum = -std::numeric_limits<double>::infinity();
    } else {
      log_sum += std::log(score.precisions[k]);
    }
  }
  if (effective_orders == 0 || std::isinf(log_sum)) {
    score.bleu = 0.0;
    return score;
  }
  score.brevity_penalty =
      candidate_length >= reference_length || candidate_length == 0.0
          ? 1.0
          : std::exp(1.0 - reference_length / candidate_length);
  score.bleu = score.brevity_penalty *
               std::exp(log_sum / static_cast<double>(effective_orders));
  return score;
}

}  // namespace

BleuScore bleu(const std::vector<std::string>& candidate,
               const std::vector<std::string>& reference,
               const BleuOptions& options) {
  DE_EXPECTS(options.max_order >= 1);
  std::vector<OrderCounts> counts(options.max_order);
  for (std::size_t k = 0; k < options.max_order; ++k)
    accumulate_order(candidate, reference, k + 1, counts[k]);
  return finish(counts, static_cast<double>(candidate.size()),
                static_cast<double>(reference.size()), options);
}

BleuScore corpus_bleu(const std::vector<std::vector<std::string>>& candidates,
                      const std::vector<std::vector<std::string>>& references,
                      const BleuOptions& options) {
  DE_EXPECTS(options.max_order >= 1);
  DE_EXPECTS(candidates.size() == references.size());
  DE_EXPECTS(!candidates.empty());
  std::vector<OrderCounts> counts(options.max_order);
  double cand_len = 0.0, ref_len = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t k = 0; k < options.max_order; ++k)
      accumulate_order(candidates[i], references[i], k + 1, counts[k]);
    cand_len += static_cast<double>(candidates[i].size());
    ref_len += static_cast<double>(references[i].size());
  }
  return finish(counts, cand_len, ref_len, options);
}

}  // namespace decompeval::text
