#include "text/bleu.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <unordered_map>

#include "text/tokenize.h"
#include "util/check.h"

namespace decompeval::text {

namespace {

struct OrderCounts {
  double matched = 0.0;
  double total = 0.0;
};

void accumulate_order_reference(const std::vector<std::string>& candidate,
                                const std::vector<std::string>& reference,
                                std::size_t order, OrderCounts& counts) {
  const auto cand_grams = ngrams(candidate, order);
  if (cand_grams.empty()) return;
  std::unordered_map<std::string, int> ref_counts;
  for (const auto& g : ngrams(reference, order)) ++ref_counts[g];
  std::unordered_map<std::string, int> cand_counts;
  for (const auto& g : cand_grams) ++cand_counts[g];
  double matched = 0.0;
  for (const auto& [gram, count] : cand_counts) {
    const auto it = ref_counts.find(gram);
    if (it != ref_counts.end())
      matched += std::min(count, it->second);  // clipped counts
  }
  counts.matched += matched;
  counts.total += static_cast<double>(cand_grams.size());
}

BleuScore finish(const std::vector<OrderCounts>& counts,
                 double candidate_length, double reference_length,
                 const BleuOptions& options) {
  BleuScore score;
  score.precisions.resize(options.max_order, 0.0);
  double log_sum = 0.0;
  std::size_t effective_orders = 0;
  for (std::size_t k = 0; k < options.max_order; ++k) {
    double num = counts[k].matched;
    double den = counts[k].total;
    if (options.smooth && k > 0) {
      num += 1.0;
      den += 1.0;
    }
    if (den <= 0.0) continue;  // segment shorter than the order
    score.precisions[k] = num / den;
    ++effective_orders;
    if (score.precisions[k] <= 0.0) {
      log_sum = -std::numeric_limits<double>::infinity();
    } else {
      log_sum += std::log(score.precisions[k]);
    }
  }
  if (effective_orders == 0 || std::isinf(log_sum)) {
    score.bleu = 0.0;
    return score;
  }
  score.brevity_penalty =
      candidate_length >= reference_length || candidate_length == 0.0
          ? 1.0
          : std::exp(1.0 - reference_length / candidate_length);
  score.bleu = score.brevity_penalty *
               std::exp(log_sum / static_cast<double>(effective_orders));
  return score;
}

#ifndef DECOMPEVAL_NO_SIMD

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t gram_hash(const std::uint32_t* ids, std::size_t order) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < order; ++i) {
    h ^= ids[i];
    h *= 1099511628211ull;
  }
  // Finalize: FNV alone clusters badly for power-of-two masks.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

std::size_t table_size_for(std::size_t entries) {
  std::size_t size = 16;
  while (size < entries * 2) size <<= 1;
  return size;
}

// Reusable scratch for the hashed n-gram kernel. Slots are generation
// stamped so reuse across calls is O(live entries), never a full clear.
struct BleuWorkspace {
  struct TokenSlot {
    std::uint32_t gen = 0;
    std::uint32_t id = 0;
    std::uint64_t hash = 0;
    const std::string* token = nullptr;
  };
  struct GramSlot {
    std::uint32_t gen = 0;
    std::uint32_t pos = 0;  // gram start within cand_ids or ref_ids
    std::uint32_t cand = 0;
    std::uint32_t ref = 0;
    std::uint8_t from_ref = 0;
    std::uint64_t hash = 0;
  };

  std::vector<TokenSlot> token_slots;
  std::uint32_t token_gen = 0;
  std::vector<std::uint32_t> cand_ids;
  std::vector<std::uint32_t> ref_ids;

  std::vector<GramSlot> gram_slots;
  std::uint32_t gram_gen = 0;
  std::vector<std::uint32_t> occupied;  // gram slots used this order

  // Interns candidate + reference tokens of one segment pair to dense ids
  // (consistent within the pair, which is all gram equality needs).
  void intern_pair(const std::vector<std::string>& candidate,
                   const std::vector<std::string>& reference) {
    const std::size_t wanted = table_size_for(candidate.size() +
                                              reference.size());
    if (token_slots.size() < wanted || token_gen ==
                                           std::numeric_limits<
                                               std::uint32_t>::max()) {
      token_slots.assign(std::max(wanted, token_slots.size()), TokenSlot{});
      token_gen = 0;
    }
    ++token_gen;
    std::uint32_t next_id = 0;
    const std::uint64_t mask = token_slots.size() - 1;
    const auto intern = [&](const std::vector<std::string>& tokens,
                            std::vector<std::uint32_t>& ids) {
      ids.clear();
      for (const std::string& token : tokens) {
        const std::uint64_t h = fnv1a(token);
        std::size_t idx = h & mask;
        for (;;) {
          TokenSlot& slot = token_slots[idx];
          if (slot.gen != token_gen) {
            slot.gen = token_gen;
            slot.id = next_id++;
            slot.hash = h;
            slot.token = &token;
            ids.push_back(slot.id);
            break;
          }
          if (slot.hash == h && *slot.token == token) {
            ids.push_back(slot.id);
            break;
          }
          idx = (idx + 1) & mask;
        }
      }
    };
    intern(candidate, cand_ids);
    intern(reference, ref_ids);
  }

  void accumulate_order(std::size_t order, OrderCounts& counts) {
    if (cand_ids.size() < order) return;
    const std::size_t n_cand = cand_ids.size() - order + 1;
    const std::size_t n_ref =
        ref_ids.size() >= order ? ref_ids.size() - order + 1 : 0;
    const std::size_t wanted = table_size_for(n_cand + n_ref);
    if (gram_slots.size() < wanted ||
        gram_gen == std::numeric_limits<std::uint32_t>::max()) {
      gram_slots.assign(std::max(wanted, gram_slots.size()), GramSlot{});
      gram_gen = 0;
    }
    ++gram_gen;
    occupied.clear();
    const std::uint64_t mask = gram_slots.size() - 1;
    const auto bump = [&](const std::vector<std::uint32_t>& ids,
                          std::uint32_t pos, bool from_ref) {
      const std::uint32_t* gram = ids.data() + pos;
      const std::uint64_t h = gram_hash(gram, order);
      std::size_t idx = h & mask;
      for (;;) {
        GramSlot& slot = gram_slots[idx];
        if (slot.gen != gram_gen) {
          slot.gen = gram_gen;
          slot.pos = pos;
          slot.cand = 0;
          slot.ref = 0;
          slot.from_ref = from_ref ? 1 : 0;
          slot.hash = h;
          occupied.push_back(static_cast<std::uint32_t>(idx));
        } else if (slot.hash != h ||
                   !std::equal(gram, gram + order,
                               (slot.from_ref ? ref_ids.data()
                                              : cand_ids.data()) +
                                   slot.pos)) {
          idx = (idx + 1) & mask;
          continue;
        }
        if (from_ref)
          ++slot.ref;
        else
          ++slot.cand;
        return;
      }
    };
    for (std::size_t i = 0; i < n_ref; ++i)
      bump(ref_ids, static_cast<std::uint32_t>(i), /*from_ref=*/true);
    for (std::size_t i = 0; i < n_cand; ++i)
      bump(cand_ids, static_cast<std::uint32_t>(i), /*from_ref=*/false);
    double matched = 0.0;
    for (const std::uint32_t idx : occupied) {
      const GramSlot& slot = gram_slots[idx];
      if (slot.cand > 0 && slot.ref > 0)
        matched += std::min(slot.cand, slot.ref);  // clipped counts
    }
    counts.matched += matched;
    counts.total += static_cast<double>(n_cand);
  }
};

BleuWorkspace& workspace() {
  thread_local BleuWorkspace ws;
  return ws;
}

#endif  // DECOMPEVAL_NO_SIMD

}  // namespace

BleuScore bleu_reference(const std::vector<std::string>& candidate,
                         const std::vector<std::string>& reference,
                         const BleuOptions& options) {
  DE_EXPECTS(options.max_order >= 1);
  std::vector<OrderCounts> counts(options.max_order);
  for (std::size_t k = 0; k < options.max_order; ++k)
    accumulate_order_reference(candidate, reference, k + 1, counts[k]);
  return finish(counts, static_cast<double>(candidate.size()),
                static_cast<double>(reference.size()), options);
}

BleuScore corpus_bleu_reference(
    const std::vector<std::vector<std::string>>& candidates,
    const std::vector<std::vector<std::string>>& references,
    const BleuOptions& options) {
  DE_EXPECTS(options.max_order >= 1);
  DE_EXPECTS(candidates.size() == references.size());
  DE_EXPECTS(!candidates.empty());
  std::vector<OrderCounts> counts(options.max_order);
  double cand_len = 0.0, ref_len = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t k = 0; k < options.max_order; ++k)
      accumulate_order_reference(candidates[i], references[i], k + 1,
                                 counts[k]);
    cand_len += static_cast<double>(candidates[i].size());
    ref_len += static_cast<double>(references[i].size());
  }
  return finish(counts, cand_len, ref_len, options);
}

BleuScore bleu(const std::vector<std::string>& candidate,
               const std::vector<std::string>& reference,
               const BleuOptions& options) {
#ifdef DECOMPEVAL_NO_SIMD
  return bleu_reference(candidate, reference, options);
#else
  DE_EXPECTS(options.max_order >= 1);
  BleuWorkspace& ws = workspace();
  ws.intern_pair(candidate, reference);
  std::vector<OrderCounts> counts(options.max_order);
  for (std::size_t k = 0; k < options.max_order; ++k)
    ws.accumulate_order(k + 1, counts[k]);
  return finish(counts, static_cast<double>(candidate.size()),
                static_cast<double>(reference.size()), options);
#endif
}

BleuScore corpus_bleu(const std::vector<std::vector<std::string>>& candidates,
                      const std::vector<std::vector<std::string>>& references,
                      const BleuOptions& options) {
#ifdef DECOMPEVAL_NO_SIMD
  return corpus_bleu_reference(candidates, references, options);
#else
  DE_EXPECTS(options.max_order >= 1);
  DE_EXPECTS(candidates.size() == references.size());
  DE_EXPECTS(!candidates.empty());
  BleuWorkspace& ws = workspace();
  std::vector<OrderCounts> counts(options.max_order);
  double cand_len = 0.0, ref_len = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ws.intern_pair(candidates[i], references[i]);
    for (std::size_t k = 0; k < options.max_order; ++k)
      ws.accumulate_order(k + 1, counts[k]);
    cand_len += static_cast<double>(candidates[i].size());
    ref_len += static_cast<double>(references[i].size());
  }
  return finish(counts, cand_len, ref_len, options);
#endif
}

}  // namespace decompeval::text
