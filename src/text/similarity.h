// Surface-level similarity measures: Levenshtein (raw and normalized),
// Jaccard over n-gram sets, and exact-match accuracy — the intrinsic
// metrics criticized by the paper's RQ5.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace decompeval::text {

/// Classic edit distance (insert/delete/substitute, unit costs).
///
/// Kernel: common prefix/suffix trimming, then Myers' bit-parallel
/// algorithm — one 64-bit word when the shorter string fits, Hyyrö's
/// blocked variant above that. Exact (integer) algorithm, so results are
/// identical to the dynamic program bit for bit; `-DDECOMPEVAL_NO_SIMD`
/// forces the reference implementation instead.
std::size_t levenshtein(std::string_view a, std::string_view b);

/// The original two-row dynamic program, kept as the oracle for the
/// differential tests (and as the forced-scalar fallback).
std::size_t levenshtein_reference(std::string_view a, std::string_view b);

/// Normalized edit distance in [0, 1]: distance / max(|a|, |b|); 0 for two
/// empty strings.
double normalized_levenshtein(std::string_view a, std::string_view b);

/// Jaccard similarity between two sets of strings (|∩| / |∪|); 1.0 when
/// both sets are empty.
double jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b);

/// Jaccard over identifier-subtoken n-grams of two names, the formulation
/// used by DIRECT's evaluation (n = 1 over subtokens by default).
double name_jaccard(std::string_view name_a, std::string_view name_b,
                    std::size_t n = 1);

/// Fraction of positions where prediction exactly equals reference.
double exact_match_accuracy(std::span<const std::string> predictions,
                            std::span<const std::string> references);

}  // namespace decompeval::text
