// BLEU (Papineni et al. 2002) with Lin–Och add-one smoothing on the
// higher-order precisions, which keeps the score meaningful on the short
// identifier sequences this study compares (raw BLEU degenerates to 0
// whenever any n-gram order has zero matches).
#pragma once

#include <string>
#include <vector>

namespace decompeval::text {

struct BleuOptions {
  std::size_t max_order = 4;
  /// Lin–Och smoothing (add one to numerator and denominator of orders > 1).
  bool smooth = true;
};

struct BleuScore {
  double bleu = 0.0;
  std::vector<double> precisions;  ///< per-order modified precisions
  double brevity_penalty = 1.0;
};

/// Sentence-level BLEU of `candidate` against a single `reference`.
///
/// Kernel: tokens are interned to integer ids and n-grams counted in a
/// preallocated open-addressing table (thread-local, reused across calls)
/// instead of per-call string-keyed maps. Collisions fall back to full
/// id-sequence comparison, so the clipped counts — and therefore every
/// score — are identical to the reference implementation bit for bit.
/// `-DDECOMPEVAL_NO_SIMD` forces the reference path.
BleuScore bleu(const std::vector<std::string>& candidate,
               const std::vector<std::string>& reference,
               const BleuOptions& options = {});

/// Corpus-level BLEU: n-gram counts pooled across segments before the
/// geometric mean (the standard corpus formulation).
BleuScore corpus_bleu(const std::vector<std::vector<std::string>>& candidates,
                      const std::vector<std::vector<std::string>>& references,
                      const BleuOptions& options = {});

/// The original string-keyed implementations, kept as oracles for the
/// differential tests (and as the forced-scalar fallback).
BleuScore bleu_reference(const std::vector<std::string>& candidate,
                         const std::vector<std::string>& reference,
                         const BleuOptions& options = {});
BleuScore corpus_bleu_reference(
    const std::vector<std::vector<std::string>>& candidates,
    const std::vector<std::vector<std::string>>& references,
    const BleuOptions& options = {});

}  // namespace decompeval::text
