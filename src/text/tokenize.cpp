#include "text/tokenize.h"

#include <cctype>

namespace decompeval::text {

namespace {
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_lower(char c) { return std::islower(static_cast<unsigned char>(c)); }
bool is_upper(char c) { return std::isupper(static_cast<unsigned char>(c)); }
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
char to_lower_char(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::vector<std::string> split_identifier(std::string_view identifier) {
  std::vector<std::string> out;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (std::size_t i = 0; i < identifier.size(); ++i) {
    const char c = identifier[i];
    if (c == '_' || !is_ident_char(c)) {
      flush();
      continue;
    }
    if (!current.empty()) {
      const char prev = identifier[i - 1];
      const bool lower_to_upper = is_lower(prev) && is_upper(c);
      const bool digit_boundary = is_digit(prev) != is_digit(c);
      // "HTMLParser" → {html, parser}: split before the last upper of an
      // acronym run when followed by a lowercase letter.
      const bool acronym_end = is_upper(prev) && is_upper(c) &&
                               i + 1 < identifier.size() &&
                               is_lower(identifier[i + 1]);
      if (lower_to_upper || digit_boundary || acronym_end) flush();
    }
    current.push_back(to_lower_char(c));
  }
  flush();
  return out;
}

std::vector<std::string> tokenize_code(std::string_view code) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t start = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      out.emplace_back(code.substr(start, i - start));
      continue;
    }
    // Greedily collect multi-character operators.
    static const std::string_view two_char_ops[] = {
        "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
        "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
    bool matched = false;
    if (i + 1 < code.size()) {
      const std::string_view pair = code.substr(i, 2);
      for (const std::string_view op : two_char_ops) {
        if (pair == op) {
          out.emplace_back(op);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      out.emplace_back(1, c);
      ++i;
    }
  }
  return out;
}

std::vector<std::string> ngrams(const std::vector<std::string>& tokens,
                                std::size_t n) {
  std::vector<std::string> out;
  if (n == 0 || tokens.size() < n) return out;
  out.reserve(tokens.size() - n + 1);
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string g = tokens[i];
    for (std::size_t j = 1; j < n; ++j) {
      g += '\x1f';
      g += tokens[i + j];
    }
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<std::string> char_ngrams(std::string_view s, std::size_t n) {
  std::vector<std::string> out;
  if (n == 0 || s.size() < n) return out;
  out.reserve(s.size() - n + 1);
  for (std::size_t i = 0; i + n <= s.size(); ++i)
    out.emplace_back(s.substr(i, n));
  return out;
}

}  // namespace decompeval::text
