#include "text/similarity.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "text/tokenize.h"
#include "util/check.h"

namespace decompeval::text {

namespace {

#ifndef DECOMPEVAL_NO_SIMD

// Myers' bit-parallel edit distance, single-word variant (pattern fits in
// one 64-bit word). The DP column is encoded as vertical delta bit vectors
// (pv/mv); each text character advances the whole column in O(1) word ops.
// Exact integer algorithm — identical output to the dynamic program.
std::size_t myers64(std::string_view pattern, std::string_view text) {
  std::uint64_t peq[256] = {};
  for (std::size_t i = 0; i < pattern.size(); ++i)
    peq[static_cast<unsigned char>(pattern[i])] |= std::uint64_t{1} << i;
  const std::uint64_t last = std::uint64_t{1} << (pattern.size() - 1);
  std::uint64_t pv = ~std::uint64_t{0};
  std::uint64_t mv = 0;
  std::size_t score = pattern.size();
  for (const char tc : text) {
    const std::uint64_t eq = peq[static_cast<unsigned char>(tc)];
    const std::uint64_t xv = eq | mv;
    const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    std::uint64_t ph = mv | ~(xh | pv);
    std::uint64_t mh = pv & xh;
    if (ph & last) ++score;
    if (mh & last) --score;
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

// Hyyrö's blocked variant for patterns longer than one word: the column is
// split into 64-row blocks; the horizontal delta at each block boundary
// (hin/hout in {-1, 0, +1}) is carried bottom-up through the chain. The
// score is tracked at the last row, i.e. the hout of the top block.
std::size_t myers_blocked(std::string_view pattern, std::string_view text) {
  const std::size_t m = pattern.size();
  const std::size_t words = (m + 63) / 64;
  thread_local std::vector<std::uint64_t> peq;  // words x 256, block-major
  thread_local std::vector<std::uint64_t> pv;
  thread_local std::vector<std::uint64_t> mv;
  peq.assign(words * 256, 0);
  for (std::size_t i = 0; i < m; ++i)
    peq[(i / 64) * 256 + static_cast<unsigned char>(pattern[i])] |=
        std::uint64_t{1} << (i % 64);
  pv.assign(words, ~std::uint64_t{0});
  mv.assign(words, 0);
  std::size_t score = m;
  for (const char tc : text) {
    const unsigned char c = static_cast<unsigned char>(tc);
    int hin = 1;  // row 0 of the DP table grows by one per column
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t last = w + 1 == words
                                     ? std::uint64_t{1} << ((m - 1) % 64)
                                     : std::uint64_t{1} << 63;
      std::uint64_t eq = peq[w * 256 + c];
      const std::uint64_t pb = pv[w];
      const std::uint64_t mb = mv[w];
      const std::uint64_t xv = eq | mb;
      if (hin < 0) eq |= 1;  // a negative boundary delta acts like a match
      const std::uint64_t xh = (((eq & pb) + pb) ^ pb) | eq;
      std::uint64_t ph = mb | ~(xh | pb);
      std::uint64_t mh = pb & xh;
      int hout = 0;
      if (ph & last)
        hout = 1;
      else if (mh & last)
        hout = -1;
      ph <<= 1;
      mh <<= 1;
      if (hin > 0)
        ph |= 1;
      else if (hin < 0)
        mh |= 1;
      pv[w] = mh | ~(xv | ph);
      mv[w] = ph & xv;
      hin = hout;
    }
    score = static_cast<std::size_t>(static_cast<long long>(score) + hin);
  }
  return score;
}

#endif  // DECOMPEVAL_NO_SIMD

}  // namespace

std::size_t levenshtein_reference(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Two-row dynamic program.
  std::vector<std::size_t> prev(b.size() + 1), curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub_cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::size_t levenshtein(std::string_view a, std::string_view b) {
#ifdef DECOMPEVAL_NO_SIMD
  return levenshtein_reference(a, b);
#else
  // A shared prefix or suffix never contributes to the distance.
  while (!a.empty() && !b.empty() && a.front() == b.front()) {
    a.remove_prefix(1);
    b.remove_prefix(1);
  }
  while (!a.empty() && !b.empty() && a.back() == b.back()) {
    a.remove_suffix(1);
    b.remove_suffix(1);
  }
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  const std::string_view pattern = a.size() <= b.size() ? a : b;
  const std::string_view text = a.size() <= b.size() ? b : a;
  return pattern.size() <= 64 ? myers64(pattern, text)
                              : myers_blocked(pattern, text);
#endif
}

double normalized_levenshtein(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(levenshtein(a, b)) /
         static_cast<double>(longest);
}

double jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  const std::unordered_set<std::string> sa(a.begin(), a.end());
  const std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const auto& s : sa)
    if (sb.count(s) > 0) ++intersection;
  const std::size_t unions = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

double name_jaccard(std::string_view name_a, std::string_view name_b,
                    std::size_t n) {
  DE_EXPECTS(n >= 1);
  const auto grams_a = ngrams(split_identifier(name_a), n);
  const auto grams_b = ngrams(split_identifier(name_b), n);
  return jaccard(grams_a, grams_b);
}

double exact_match_accuracy(std::span<const std::string> predictions,
                            std::span<const std::string> references) {
  DE_EXPECTS(predictions.size() == references.size());
  DE_EXPECTS(!predictions.empty());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i] == references[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

}  // namespace decompeval::text
