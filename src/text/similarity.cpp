#include "text/similarity.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenize.h"
#include "util/check.h"

namespace decompeval::text {

std::size_t levenshtein(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Two-row dynamic program.
  std::vector<std::size_t> prev(b.size() + 1), curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub_cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + sub_cost});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

double normalized_levenshtein(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(levenshtein(a, b)) /
         static_cast<double>(longest);
}

double jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  const std::unordered_set<std::string> sa(a.begin(), a.end());
  const std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const auto& s : sa)
    if (sb.count(s) > 0) ++intersection;
  const std::size_t unions = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

double name_jaccard(std::string_view name_a, std::string_view name_b,
                    std::size_t n) {
  DE_EXPECTS(n >= 1);
  const auto grams_a = ngrams(split_identifier(name_a), n);
  const auto grams_b = ngrams(split_identifier(name_b), n);
  return jaccard(grams_a, grams_b);
}

double exact_match_accuracy(std::span<const std::string> predictions,
                            std::span<const std::string> references) {
  DE_EXPECTS(predictions.size() == references.size());
  DE_EXPECTS(!predictions.empty());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i] == references[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

}  // namespace decompeval::text
