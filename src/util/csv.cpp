#include "util/csv.h"

namespace decompeval::util {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace decompeval::util
