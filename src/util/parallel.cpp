#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace decompeval::util {

std::size_t default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_thread_count(std::size_t threads) noexcept {
  return threads == 0 ? default_thread_count() : threads;
}

// Workers sleep between batches; parallel_for publishes one batch
// (fn, n, a fresh generation number) under the mutex, wakes everyone,
// joins the batch itself, and then waits until every worker has both
// checked in for this generation (`arrived`) and checked out again
// (`active_workers`). The positive acknowledgement is what makes the
// handoff safe: a worker that is still asleep when the batch drains would
// otherwise wake during the *next* publish and read fn/n concurrently
// with the writer. Because no batch completes before all workers arrive,
// a worker can never lag more than one generation behind, and every read
// of the batch state happens under the mutex via the check-in snapshot.
struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable batch_done;

  // Batch state, guarded by `mutex`. Workers snapshot fn/n at check-in;
  // only `next_index` is claimed lock-free after that.
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::uint64_t generation = 0;
  std::size_t arrived = 0;  ///< workers checked in for `generation`
  std::size_t active_workers = 0;
  std::atomic<std::size_t> next_index{0};
  // Lowest-index failure of the batch. Keying on the task index (not
  // completion time) makes the rethrown exception deterministic: the same
  // inputs rethrow the same error no matter how workers are scheduled.
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;
  bool shutting_down = false;

  std::vector<std::thread> workers;

  void run_batch_slice(const std::function<void(std::size_t)>& task,
                       std::size_t count) {
    // Claim indices until the batch is exhausted. Keeps running after an
    // error so the batch always drains (no orphaned indices).
    for (;;) {
      const std::size_t i = next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      std::size_t count = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] {
          return shutting_down || generation != seen_generation;
        });
        if (shutting_down) return;
        seen_generation = generation;
        task = fn;
        count = n;
        ++arrived;
        ++active_workers;
      }
      run_batch_slice(*task, count);
      {
        std::lock_guard<std::mutex> lock(mutex);
        --active_workers;
      }
      batch_done.notify_one();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(resolve_thread_count(threads)) {
  if (threads_ <= 1) return;  // serial mode: no workers, no Impl
  impl_ = new Impl;
  impl_->workers.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (!impl_) {
    // Serial fallback: identical call sequence, calling thread, index order.
    // Mirrors the parallel error contract: the batch drains past a throwing
    // index and the first failure (which in index order is the lowest) is
    // rethrown after the last task.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->fn = &fn;
    impl_->n = n;
    impl_->next_index.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    impl_->first_error_index = 0;
    impl_->arrived = 0;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();
  impl_->run_batch_slice(fn, n);  // calling thread participates
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    // Wait for every worker to acknowledge this generation, not just for
    // the active count to hit zero: a worker that has not checked in yet
    // must not be left behind to collide with the next batch's publish.
    impl_->batch_done.wait(lock, [&] {
      return impl_->arrived == impl_->workers.size() &&
             impl_->active_workers == 0;
    });
    impl_->fn = nullptr;
    error = impl_->first_error;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(threads);
  pool.parallel_for(n, fn);
}

}  // namespace decompeval::util
