// Bump-pointer arena allocation for the service hot path.
//
// The replication service used to pay one heap round trip per JSON node,
// per string, and per rendered response on *every* request. An Arena
// replaces that with pointer bumps into reusable blocks: allocation is an
// offset increment, deallocation is a no-op, and the whole arena is
// reclaimed wholesale by reset() once the response has been written.
//
// Arena implements std::pmr::memory_resource, so any pmr-aware container
// (service::Json's nodes and strings are pmr-backed) can live on it with
// no special casing: a Json parsed with an arena puts every node and
// every string on that arena; the same Json type default-constructs onto
// the global heap everywhere else. pmr's non-propagating allocator
// semantics give exactly the ownership rules the service needs for free:
// copies land on the *destination's* resource (so caching a response
// deep-copies it off the scratch arena), and moves across resources
// degrade to element-wise moves instead of smuggling arena pointers out.
//
// The service layer uses arenas in two roles (the dual-arena idiom):
//   scratch    per connection, reset after every response — request
//              parse trees, response nodes, render buffers
//   permanent  per core, compacted rarely — interned rendered lines for
//              the warm-request cache (see ServiceCore)
// DualArena bundles the pair for call sites that want both.
//
// Thread safety: none. Each arena is owned by exactly one thread at a
// time (a connection loop, a core behind its mutex); that is the point —
// no allocator lock on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string_view>
#include <vector>

namespace decompeval::util {

class Arena : public std::pmr::memory_resource {
 public:
  /// `first_block` is the size of the initial block, allocated lazily on
  /// first use; subsequent blocks double up to `max_block`.
  explicit Arena(std::size_t first_block = 4096,
                 std::size_t max_block = 256 * 1024) noexcept
      : next_block_size_(first_block ? first_block : 4096),
        max_block_size_(max_block) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewinds every block to empty without releasing memory: the next
  /// allocations reuse the same blocks front to back. O(1) in the number
  /// of bytes, O(blocks) in bookkeeping.
  void reset() noexcept {
    block_index_ = 0;
    offset_ = 0;
    live_bytes_ = 0;
  }

  /// Releases every block back to the heap (reset() plus free).
  void release() noexcept {
    blocks_.clear();
    reset();
  }

  /// Copies `text` into the arena and returns a view of the copy.
  std::string_view intern(std::string_view text) {
    if (text.empty()) return {};
    char* p = static_cast<char*>(allocate(text.size(), 1));
    std::char_traits<char>::copy(p, text.data(), text.size());
    return {p, text.size()};
  }

  /// Bytes handed out since the last reset().
  std::size_t live_bytes() const noexcept { return live_bytes_; }
  /// Bytes held in blocks (capacity, survives reset()).
  std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* do_allocate(std::size_t bytes, std::size_t alignment) override {
    while (block_index_ < blocks_.size()) {
      Block& block = blocks_[block_index_];
      const std::size_t aligned = align_up(offset_, alignment);
      if (aligned + bytes <= block.size) {
        offset_ = aligned + bytes;
        live_bytes_ += bytes;
        return block.data.get() + aligned;
      }
      ++block_index_;
      offset_ = 0;
    }
    // No existing block fits: grow. The new block is big enough for this
    // allocation even when it exceeds the doubling schedule.
    std::size_t size = next_block_size_;
    if (size < bytes + alignment) size = bytes + alignment;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    if (next_block_size_ < max_block_size_)
      next_block_size_ = next_block_size_ * 2 < max_block_size_
                             ? next_block_size_ * 2
                             : max_block_size_;
    block_index_ = blocks_.size() - 1;
    Block& block = blocks_.back();
    const std::size_t aligned = align_up(0, alignment);
    offset_ = aligned + bytes;
    live_bytes_ += bytes;
    return block.data.get() + aligned;
  }

  void do_deallocate(void*, std::size_t, std::size_t) override {
    // Bump allocator: individual frees are no-ops; reset() reclaims all.
  }

  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept
      override {
    return this == &other;
  }

  static std::size_t align_up(std::size_t n, std::size_t alignment) noexcept {
    return (n + alignment - 1) & ~(alignment - 1);
  }

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;  ///< block currently being bumped
  std::size_t offset_ = 0;       ///< bump offset within that block
  std::size_t live_bytes_ = 0;
  std::size_t next_block_size_;
  std::size_t max_block_size_;
};

/// The scratch/permanent pair used by the service layer: `scratch` is
/// reset wholesale after every request, `permanent` holds data that must
/// outlive requests (cached rendered results) and is only ever reclaimed
/// by explicit compaction.
struct DualArena {
  Arena scratch;
  Arena permanent;
};

}  // namespace decompeval::util
