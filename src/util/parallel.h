// Deterministic task-parallel execution for the expensive sweeps.
//
// Every hot loop in the reproduction (per-seed robustness sweeps, power
// replicates, recovery-sweep grid points, co-occurrence accumulation) is
// embarrassingly parallel: each task is a pure function of its index, with
// any randomness derived from an independent per-index RNG stream (see
// Rng::split in util/rng.h). This module supplies the execution layer:
// a fixed-size thread pool with order-preserving parallel_for/parallel_map
// primitives. Tasks may run in any order on any worker, but results are
// keyed by index and callers merge them in index order, so output is
// bit-identical between serial and parallel execution — `threads <= 1`
// runs the exact same code path inline on the calling thread.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace decompeval::util {

/// Worker count used when a config's `threads` field is 0 ("auto"):
/// std::thread::hardware_concurrency(), clamped to at least 1.
std::size_t default_thread_count() noexcept;

/// Resolves a config-level thread knob: 0 = auto, otherwise the value.
std::size_t resolve_thread_count(std::size_t threads) noexcept;

/// Fixed-size pool of worker threads executing indexed task batches.
///
/// One batch runs at a time (parallel_for blocks until the batch drains),
/// so a pool is cheap to share across sequential parallel regions. The
/// pool itself is not re-entrant: do not call parallel_for from inside a
/// task of the same pool.
class ThreadPool {
 public:
  /// Spawns `resolve_thread_count(threads) - 1` workers (the calling
  /// thread participates in every batch, so `threads` is the total
  /// parallelism). `threads <= 1` spawns no workers at all.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread; always >= 1.
  std::size_t thread_count() const noexcept { return threads_; }

  /// Runs fn(0), ..., fn(n-1), blocking until all calls complete. Indices
  /// are claimed dynamically, so long and short tasks balance across
  /// workers. With thread_count() == 1 the calls run serially in index
  /// order on the calling thread. If any call throws, the exception of the
  /// *lowest failing index* is rethrown here after the batch drains — a
  /// deterministic choice, independent of worker scheduling, identical in
  /// serial and parallel mode. The remaining indices still run; a worker
  /// exception can never escape onto a pool thread (no std::terminate).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Order-preserving map: result[i] = fn(items[i], i). Results land in
  /// their slot regardless of which worker computes them.
  template <typename T, typename Fn>
  auto parallel_map(const std::vector<T>& items, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(items[0], std::size_t{0}))>> {
    using R = std::decay_t<decltype(fn(items[0], std::size_t{0}))>;
    std::vector<R> results(items.size());
    parallel_for(items.size(),
                 [&](std::size_t i) { results[i] = fn(items[i], i); });
    return results;
  }

 private:
  struct Impl;
  Impl* impl_ = nullptr;  ///< null when thread_count() == 1 (serial mode)
  std::size_t threads_ = 1;
};

/// One-shot convenience: runs the batch on a transient pool. Prefer a
/// reusable ThreadPool when calling in a loop.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// One-shot order-preserving map on a transient pool.
template <typename T, typename Fn>
auto parallel_map(std::size_t threads, const std::vector<T>& items, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items[0], std::size_t{0}))>> {
  ThreadPool pool(threads);
  return pool.parallel_map(items, std::forward<Fn>(fn));
}

}  // namespace decompeval::util
