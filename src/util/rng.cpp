#include "util/rng.h"

#include <cmath>

namespace decompeval::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A xoshiro state of all zeros is invalid; splitmix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DE_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DE_EXPECTS(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DE_EXPECTS(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // no overflow for our ranges
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * m;
  has_spare_ = true;
  return u * m;
}

double Rng::normal(double mean, double sd) {
  DE_EXPECTS(sd >= 0.0);
  return mean + sd * normal();
}

double Rng::lognormal(double mu_log, double sd_log) {
  return std::exp(normal(mu_log, sd_log));
}

double Rng::gamma(double shape, double scale) {
  DE_EXPECTS(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with a uniform power (Marsaglia–Tsang).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return scale * d * v;
  }
}

double Rng::beta(double a, double b) {
  DE_EXPECTS(a > 0.0 && b > 0.0);
  const double x = gamma(a, 1.0);
  const double y = gamma(b, 1.0);
  return x / (x + y);
}

double Rng::exponential(double rate) {
  DE_EXPECTS(rate > 0.0);
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  DE_EXPECTS(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    DE_EXPECTS_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  DE_EXPECTS_MSG(total > 0.0, "categorical weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::split_seed(std::uint64_t stream_id) const noexcept {
  // Two full splitmix64 rounds over (state hash, stream id): one round is
  // enough to decorrelate sequential ids, two keep the mapping safe for
  // adversarial patterns like ids that differ in a single high bit.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                     rotl(s_[3], 43);
  sm = splitmix64(sm) ^ (stream_id * 0xD1B54A32D192ED03ULL);
  const std::uint64_t first = splitmix64(sm);
  return splitmix64(sm) ^ rotl(first, 31);
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  return Rng(split_seed(stream_id));
}

Rng Rng::fork(std::uint64_t label) noexcept {
  // Hash the current state with the label to derive a child seed.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                      rotl(s_[3], 43) ^ (label * 0x9E3779B97F4A7C15ULL);
  (void)next_u64();  // advance parent so repeated forks with same label differ
  return Rng(splitmix64(mix));
}

}  // namespace decompeval::util
