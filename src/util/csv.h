// Minimal CSV emission for exporting simulated study data (the paper's
// replication package ships CSVs; ours can too).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace decompeval::util {

/// Streams rows as RFC-4180-style CSV (quotes fields containing
/// comma/quote/newline, doubles embedded quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: quotes a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

}  // namespace decompeval::util
