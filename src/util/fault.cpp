#include "util/fault.h"

#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace decompeval::util {

namespace {

// FNV-1a, the site-name half of the probabilistic stream key. Stable across
// platforms so fault plans replay identically everywhere.
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultSpec FaultSpec::every_nth(std::uint64_t n) {
  DE_EXPECTS_MSG(n >= 1, "every_nth schedule needs n >= 1");
  return {Kind::kEveryNth, n, 0.0};
}

FaultSpec FaultSpec::probability(double p) {
  DE_EXPECTS_MSG(p >= 0.0 && p <= 1.0, "fault probability must be in [0, 1]");
  return {Kind::kProbability, 0, p};
}

std::string FaultSpec::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kNever: os << "never"; break;
    case Kind::kOnce: os << "once@" << n; break;
    case Kind::kEveryNth: os << "every" << n; break;
    case Kind::kAlways: os << "always"; break;
    case Kind::kProbability: os << "p=" << p; break;
  }
  return os.str();
}

FaultPlan& FaultPlan::set(std::string site, FaultSpec spec) {
  DE_EXPECTS_MSG(!site.empty(), "fault site name must be non-empty");
  sites_[std::move(site)] = spec;
  return *this;
}

const FaultSpec* FaultPlan::find(std::string_view site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

std::vector<std::string> FaultPlan::sites() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, spec] : sites_) out.push_back(name);
  return out;
}

FaultError::FaultError(std::string_view site, std::uint64_t hit)
    : std::runtime_error("injected fault at site `" + std::string(site) +
                         "` (hit " + std::to_string(hit) + ")"),
      site_(site),
      hit_(hit) {}

bool FaultInjector::should_fire(std::string_view site,
                                std::uint64_t hit) const {
  const FaultSpec* spec = plan_.find(site);
  if (spec == nullptr) return false;
  switch (spec->kind) {
    case FaultSpec::Kind::kNever:
      return false;
    case FaultSpec::Kind::kOnce:
      return hit == spec->n;
    case FaultSpec::Kind::kEveryNth:
      return (hit + 1) % spec->n == 0;
    case FaultSpec::Kind::kAlways:
      return true;
    case FaultSpec::Kind::kProbability: {
      // Pure in (seed, site, hit): the stream never advances shared state.
      Rng stream = Rng(plan_.seed() ^ fnv1a(site)).split(hit);
      return stream.uniform() < spec->p;
    }
  }
  return false;
}

void FaultInjector::raise_if(std::string_view site, std::uint64_t hit) const {
  if (should_fire(site, hit)) throw FaultError(site, hit);
}

std::uint64_t FaultInjector::take_hit(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(site);
  if (it == counters_.end()) it = counters_.emplace(std::string(site), 0).first;
  return it->second++;
}

bool FaultInjector::fire_next(std::string_view site) {
  return should_fire(site, take_hit(site));
}

void FaultInjector::raise_next(std::string_view site) {
  const std::uint64_t hit = take_hit(site);
  if (should_fire(site, hit)) throw FaultError(site, hit);
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(site);
  return it == counters_.end() ? 0 : it->second;
}

DeadlineExceeded::DeadlineExceeded(const std::string& where, bool cancelled)
    : std::runtime_error((cancelled ? "request cancelled at " :
                                      "deadline exceeded at ") + where),
      cancelled_(cancelled) {}

Deadline Deadline::after(std::chrono::nanoseconds budget) {
  Deadline d;
  d.has_deadline_ = true;
  d.at_ = std::chrono::steady_clock::now() + budget;
  return d;
}

Deadline Deadline::at(std::chrono::steady_clock::time_point when) {
  Deadline d;
  d.has_deadline_ = true;
  d.at_ = when;
  return d;
}

Deadline Deadline::with_cancel(const std::atomic<bool>* cancel) const {
  Deadline d = *this;
  d.cancel_ = cancel;
  return d;
}

bool Deadline::expired() const {
  if (cancelled()) return true;
  return has_deadline_ && std::chrono::steady_clock::now() >= at_;
}

void Deadline::check(const char* where) const {
  if (cancelled()) throw DeadlineExceeded(where, /*cancelled=*/true);
  if (has_deadline_ && std::chrono::steady_clock::now() >= at_)
    throw DeadlineExceeded(where);
}

}  // namespace decompeval::util
