// Lightweight contract checking for the decompeval library.
//
// Preconditions and invariants are enforced with exceptions (not abort) so
// that library consumers can recover from misuse at API boundaries, per the
// error-handling policy in DESIGN.md. Internal logic errors use the same
// mechanism because every public entry point is cheap relative to the
// statistical work it guards.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace decompeval {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a numerical routine fails to converge or degenerates.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace decompeval

/// Validates a caller-supplied condition; throws PreconditionError on failure.
#define DE_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::decompeval::detail::throw_precondition(#cond, __FILE__, __LINE__,    \
                                               "");                          \
  } while (false)

#define DE_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond))                                                             \
      ::decompeval::detail::throw_precondition(#cond, __FILE__, __LINE__,    \
                                               (msg));                       \
  } while (false)

/// Validates an internal invariant; throws InvariantError on failure.
#define DE_ENSURES(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::decompeval::detail::throw_invariant(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define DE_ENSURES_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond))                                                             \
      ::decompeval::detail::throw_invariant(#cond, __FILE__, __LINE__,      \
                                            (msg));                          \
  } while (false)
