// Deterministic fault injection for chaos testing the pipeline and the
// replication service.
//
// Every layer that must survive failure (multi-start fits, study shards,
// snippet parsing, service requests) declares named *fault sites*. A
// FaultPlan maps site names to firing schedules, and whether a given hit
// of a site fires is a pure function of (plan seed, site name, hit index)
// — probabilistic schedules draw from an Rng::split stream keyed on the
// site and hit, never from shared mutable state — so a chaos run is
// replayable bit-for-bit regardless of thread scheduling. Call sites that
// have a natural deterministic index (a start index, a participant shard,
// a snippet slot) pass it explicitly via raise_if/should_fire; serial
// call sites without one (service request arrivals) use the per-site
// atomic counter variants (raise_next/fire_next), which are deterministic
// whenever the call order is.
//
// The same header carries the cooperative-cancellation Deadline used by
// the service layer: long-running fitters call Deadline::check() at loop
// checkpoints, which throws DeadlineExceeded once the wall-clock budget
// is spent or a watchdog has flipped the cancel flag.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace decompeval::util {

/// When a fault site fires, as a pure function of the hit index.
struct FaultSpec {
  enum class Kind {
    kNever,
    kOnce,         ///< fire exactly at hit index `n`
    kEveryNth,     ///< fire at hit indices n-1, 2n-1, ... (every n-th hit)
    kAlways,
    kProbability,  ///< fire with probability p, deterministic in (seed, site, hit)
  };
  Kind kind = Kind::kNever;
  std::uint64_t n = 0;
  double p = 0.0;

  static FaultSpec never() { return {}; }
  static FaultSpec once(std::uint64_t hit = 0) {
    return {Kind::kOnce, hit, 0.0};
  }
  static FaultSpec every_nth(std::uint64_t n);
  static FaultSpec always() { return {Kind::kAlways, 0, 0.0}; }
  static FaultSpec probability(double p);

  /// Human-readable schedule name ("never", "once@3", "every3", ...).
  std::string describe() const;
};

/// Named fault sites with their schedules plus the seed of the
/// probabilistic streams. Value type; build once, share const.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  FaultPlan& set(std::string site, FaultSpec spec);
  /// Schedule for `site`, or nullptr when the site is unlisted (never fires).
  const FaultSpec* find(std::string_view site) const;

  std::uint64_t seed() const { return seed_; }
  bool empty() const { return sites_.empty(); }
  /// Site names in lexicographic order (for reports).
  std::vector<std::string> sites() const;

 private:
  std::uint64_t seed_ = 0;
  std::map<std::string, FaultSpec, std::less<>> sites_;
};

/// Thrown by a firing fault site. Treated as a *transient* failure by the
/// layers above: retried, quarantined, or degraded — never fatal.
class FaultError : public std::runtime_error {
 public:
  FaultError(std::string_view site, std::uint64_t hit);
  const std::string& site() const { return site_; }
  std::uint64_t hit() const { return hit_; }

 private:
  std::string site_;
  std::uint64_t hit_;
};

/// Plan plus per-site hit counters. The explicit-index queries are const
/// and thread-safe by construction (pure functions); the counter variants
/// serialize on an internal mutex.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Pure decision: does hit `hit` of `site` fire under the plan?
  bool should_fire(std::string_view site, std::uint64_t hit) const;

  /// Throws FaultError iff should_fire(site, hit).
  void raise_if(std::string_view site, std::uint64_t hit) const;

  /// Counter variants for call sites without a natural index: each call
  /// consumes the site's next hit index.
  bool fire_next(std::string_view site);
  void raise_next(std::string_view site);

  /// Hits consumed so far by the counter variants (observability).
  std::uint64_t hits(std::string_view site) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  std::uint64_t take_hit(std::string_view site);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// Thrown when a cooperative checkpoint finds the deadline spent or the
/// request cancelled by a watchdog.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& where, bool cancelled = false);
  bool cancelled() const { return cancelled_; }

 private:
  bool cancelled_ = false;
};

/// Cooperative wall-clock budget. Default-constructed deadlines never
/// expire; an attached cancel flag (set by the service watchdog) trips the
/// deadline immediately. Cheap to copy — checkpoints read a time_point and
/// one relaxed atomic load.
class Deadline {
 public:
  Deadline() = default;

  static Deadline after(std::chrono::nanoseconds budget);
  static Deadline at(std::chrono::steady_clock::time_point when);

  /// Returns *this with the watchdog cancel flag attached.
  Deadline with_cancel(const std::atomic<bool>* cancel) const;

  bool has_deadline() const { return has_deadline_ || cancel_ != nullptr; }
  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }
  bool expired() const;

  /// Checkpoint: throws DeadlineExceeded when expired or cancelled.
  /// `where` names the checkpoint for the structured error message.
  void check(const char* where) const;

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_{};
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace decompeval::util
