#include "util/strings.h"

#include <cctype>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace decompeval::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  DE_EXPECTS(!from.empty());
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_p_value(double p) {
  if (std::isnan(p)) return "NA";
  if (p < 0.0001) return "<0.0001";
  if (p < 0.001) {
    std::ostringstream os;
    os.precision(3);
    os << std::scientific << p;
    return os.str();
  }
  return format_fixed(p, 4);
}

}  // namespace decompeval::util
