// Bounded least-recently-used cache.
//
// The service layer's per-seed result/embedding caches and the cluster
// disk cache's in-memory front all need the same thing: a map with a hard
// size bound, so a long-lived backend under a seed sweep cannot grow
// without limit. Not thread-safe — every user already serializes access
// behind its own mutex, and keeping the locking outside lets a caller
// combine a lookup and an insert under one critical section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace decompeval::util {

/// Capacity 0 disables the cache entirely: put() is a no-op and find()
/// always misses (useful for switching a cache layer off in tests).
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Value for `key`, bumped to most-recently-used; nullptr on miss. The
  /// pointer is invalidated by the next put().
  const V* find(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Inserts or replaces `key`, evicting the least-recently-used entry
  /// when the bound is exceeded.
  void put(const K& key, V value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++evictions_;
    }
  }

  /// Visits every entry, most- to least-recently-used, without touching
  /// recency. The service layer's arena compaction walks the cache to
  /// re-intern surviving values.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, value] : entries_) fn(key, value);
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Entries dropped by the size bound since construction (observability:
  /// the service exposes this through its cache_stats op).
  std::uint64_t evictions() const { return evictions_; }

  void clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  /// Front = most recently used.
  std::list<std::pair<K, V>> entries_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
};

}  // namespace decompeval::util
