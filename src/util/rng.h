// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component of the study simulator draws from an Rng that
// is explicitly seeded at the top of the pipeline, so a full replication run
// is a pure function of its StudyConfig. The engine is xoshiro256++ seeded
// via splitmix64, which is fast, has a 2^256-1 period, and — unlike
// std::mt19937 with std::normal_distribution — produces identical streams
// across standard-library implementations because all distribution
// transforms are implemented here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace decompeval::util {

/// Deterministic PRNG with the distribution transforms used by the study
/// simulator. Copyable; copies continue independent identical streams.
class Rng {
 public:
  /// Seeds the engine via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0xDECAFBAD5EEDULL) noexcept;

  /// Next raw 64-bit value from xoshiro256++.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the distribution is exactly uniform.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p, clamped to [0, 1].
  bool bernoulli(double p) noexcept;

  /// Standard normal via the polar Box–Muller method (cached spare).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Lognormal: exp(Normal(mu_log, sd_log)).
  double lognormal(double mu_log, double sd_log);

  /// Gamma(shape, scale) via Marsaglia–Tsang; shape > 0, scale > 0.
  double gamma(double shape, double scale);

  /// Beta(a, b) via two gamma draws; a > 0, b > 0.
  double beta(double a, double b);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// Index drawn from unnormalized non-negative weights (not all zero).
  std::size_t categorical(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; children with distinct labels are
  /// statistically independent of each other and of the parent.
  Rng fork(std::uint64_t label) noexcept;

  /// Derives the `stream_id`-th independent child stream WITHOUT advancing
  /// this generator: split(i) is a pure function of (current state, i), so
  /// concurrent tasks can each take stream i for task index i and the
  /// result is identical no matter how tasks are scheduled. Streams with
  /// distinct ids are statistically independent of each other and of the
  /// parent's continuation.
  Rng split(std::uint64_t stream_id) const noexcept;

  /// Seed value of the `stream_id`-th child stream — for APIs that take a
  /// `uint64_t seed` rather than an Rng (e.g. StudyConfig::seed).
  std::uint64_t split_seed(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace decompeval::util
