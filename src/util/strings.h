// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace decompeval::util {

/// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on any run of whitespace; drops empty fields.
std::vector<std::string> split_whitespace(std::string_view s);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Formats a double with `digits` decimal places.
std::string format_fixed(double value, int digits);

/// Formats a p-value the way the paper does: "<0.0001" below that threshold,
/// otherwise 4-significant-digit fixed/scientific hybrid.
std::string format_p_value(double p);

}  // namespace decompeval::util
