// DIRTY-like name/type recovery model.
//
// The real DIRTY is a trained transformer; the study consumes it as a
// black box that maps decompiler placeholders to predicted (name, type)
// pairs with a characteristic error profile. This model reproduces that
// profile parametrically, using the embedding corpus's concept clusters as
// its "learned" lexicon:
//   exact      — the ground-truth name verbatim,
//   synonym    — another member of the ground-truth name's concept cluster
//                (size→length: semantically right, lexically different),
//   related    — a context word of the cluster (plausible but vaguer),
//   misleading — a member of a *different* cluster (the failure mode that
//                drove the paper's postorder-Q2 and SSL* observations),
//   placeholder— no recovery; the decompiler name is kept.
// Rates are configurable so ablation benches can sweep recovery quality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "util/rng.h"

namespace decompeval::decompiler {

enum class RecoveryOutcome {
  kExact,
  kSynonym,
  kRelated,
  kMisleading,
  kPlaceholder,
};

/// Human-readable label for an outcome (for reports/tests).
const char* to_string(RecoveryOutcome outcome);

struct RecoveryRates {
  double exact = 0.20;
  double synonym = 0.35;
  double related = 0.20;
  double misleading = 0.15;
  // remainder: placeholder (no recovery)

  double placeholder() const {
    return 1.0 - exact - synonym - related - misleading;
  }
  void validate() const;
};

struct RecoveredName {
  std::string original;
  std::string placeholder;  ///< decompiler name it replaces
  std::string recovered;
  RecoveryOutcome outcome{};
};

/// Stochastic recovery model over the concept-cluster lexicon.
class DirtyModel {
 public:
  explicit DirtyModel(const RecoveryRates& rates = {},
                      std::uint64_t seed = 7);

  /// Predicts a recovered name for `original_name` (the ground truth the
  /// model is trying to reconstruct) currently shown as `placeholder`.
  RecoveredName recover_name(const std::string& original_name,
                             const std::string& placeholder);

  /// Predicts a recovered type for ground truth `original_type` currently
  /// flattened to `placeholder_type`. Misleading draws produce a
  /// plausible-but-wrong named type (the `SSL *` failure mode).
  RecoveredName recover_type(const std::string& original_type,
                             const std::string& placeholder_type);

  const RecoveryRates& rates() const { return rates_; }

 private:
  RecoveryOutcome draw_outcome();

  RecoveryRates rates_;
  util::Rng rng_;
};

}  // namespace decompeval::decompiler
