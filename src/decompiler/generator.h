// Synthetic snippet generator.
//
// The paper's threats-to-validity section calls out its four-snippet limit
// and suggests "randomizing a larger pool of snippets per participant" —
// this generator provides that pool. It instantiates function templates
// (buffer copies, accumulation loops, searches, list walks, path joins)
// with semantically meaningful names drawn from the concept-cluster
// lexicon, pseudo-decompiles them (Hex-Rays variant), and runs the
// DIRTY-like recovery model over the placeholders (DIRTY variant),
// yielding fully aligned Snippets whose question calibration is *derived
// from the sampled annotation quality* — misleading recoveries on
// load-bearing variables induce trust penalties, exactly the coupling the
// paper observed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "decompiler/dirty_model.h"
#include "snippets/snippet.h"

namespace decompeval::decompiler {

struct GeneratorConfig {
  RecoveryRates recovery_rates;
  std::uint64_t seed = 99;
  /// Logit penalty per misleading annotation on a question's key variables.
  double misleading_trust_penalty = 1.4;
  /// Logit bonus per exact/synonym recovery on key variables.
  double helpful_shift = 0.25;
};

/// Generates `count` synthetic snippets. Deterministic in config.seed.
std::vector<snippets::Snippet> generate_snippets(std::size_t count,
                                                 const GeneratorConfig& config);

/// Applies a placeholder→recovered rename map to decompiled source (parse,
/// rename, re-print). Types of parameters/locals are replaced when the map
/// contains their placeholder type text.
std::string apply_renames(
    const std::string& source,
    const std::map<std::string, std::string>& name_map,
    const std::map<std::string, std::string>& type_map,
    const lang::ParseOptions& options);

}  // namespace decompeval::decompiler
