// A Hex-Rays-style pseudo-decompiler pass.
//
// The study's Hex-Rays substrate is only observed through its *output
// text*; the property that matters is its naming convention — arguments
// become a1, a2, …, locals become v<N>, and semantic types flatten to
// machine-width placeholders. This pass applies exactly that convention to
// any parseable function, producing (a) the renamed source and (b) the
// ground-truth rename map that the DIRTY-like recovery model and the
// intrinsic metrics consume.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "lang/parser.h"
#include "metrics/registry.h"

namespace decompeval::decompiler {

struct PseudoDecompileResult {
  std::string source;
  /// original variable name → placeholder (a1/v5/...)
  std::map<std::string, std::string> rename_map;
  /// original declared type text → placeholder type text
  std::map<std::string, std::string> retype_map;
};

/// Rewrites all parameters and locals of the function in `original_source`
/// to decompiler placeholders and flattens types. Throws lang::ParseError
/// if the source does not parse.
PseudoDecompileResult pseudo_decompile(std::string_view original_source,
                                       const lang::ParseOptions& options = {});

/// Maps a semantic C type to the placeholder a decompiler would emit
/// (pointers → __int64/_QWORD-style, small ints widen, typedefs erase).
std::string flatten_type(const std::string& type_text);

}  // namespace decompeval::decompiler
