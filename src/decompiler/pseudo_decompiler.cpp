#include "decompiler/pseudo_decompiler.h"

#include <functional>

#include "lang/interp.h"
#include "lang/printer.h"
#include "util/check.h"
#include "util/strings.h"

namespace decompeval::decompiler {

namespace {

// Pointee widths of variables whose pointer types were flattened to
// __int64; indexing through them must become explicit cast-and-offset
// expressions (what real decompilers emit when pointee types are lost).
using WidthMap = std::map<std::string, std::size_t>;

const char* placeholder_pointer_for(std::size_t width) {
  switch (width) {
    case 1: return "_BYTE *";
    case 2: return "_WORD *";
    case 4: return "_DWORD *";
    default: return "_QWORD *";
  }
}

lang::ExprPtr make_number(std::int64_t value) {
  auto e = std::make_unique<lang::Expr>();
  e->kind = lang::ExprKind::kNumber;
  e->text = std::to_string(value) + "LL";
  return e;
}

// Rewrites `base[index]` (base: flattened pointer) into
// `*(_W *)(base + w * index)` — width-faithful decompiler style.
lang::ExprPtr lower_index(lang::ExprPtr base, lang::ExprPtr index,
                          std::size_t width) {
  lang::ExprPtr offset;
  if (width == 1) {
    offset = std::move(index);
  } else {
    offset = std::make_unique<lang::Expr>();
    offset->kind = lang::ExprKind::kBinary;
    offset->text = "*";
    offset->children.push_back(make_number(static_cast<std::int64_t>(width)));
    offset->children.push_back(std::move(index));
  }
  auto sum = std::make_unique<lang::Expr>();
  sum->kind = lang::ExprKind::kBinary;
  sum->text = "+";
  sum->children.push_back(std::move(base));
  sum->children.push_back(std::move(offset));
  auto cast = std::make_unique<lang::Expr>();
  cast->kind = lang::ExprKind::kCast;
  cast->type_text = placeholder_pointer_for(width);
  cast->children.push_back(std::move(sum));
  auto deref = std::make_unique<lang::Expr>();
  deref->kind = lang::ExprKind::kUnary;
  deref->text = "*";
  deref->children.push_back(std::move(cast));
  return deref;
}

void rename_in_expr(lang::ExprPtr& e_ptr,
                    const std::map<std::string, std::string>& renames,
                    const WidthMap& widths) {
  lang::Expr& e = *e_ptr;
  if (e.kind == lang::ExprKind::kIdentifier) {
    const auto it = renames.find(e.text);
    if (it != renames.end()) e.text = it->second;
    return;
  }
  if (e.kind == lang::ExprKind::kCast) e.type_text = flatten_type(e.type_text);

  // Lower indexing through a flattened pointer before recursing, while the
  // base still carries its original name.
  if (e.kind == lang::ExprKind::kIndex &&
      e.children[0]->kind == lang::ExprKind::kIdentifier) {
    const auto it = widths.find(e.children[0]->text);
    if (it != widths.end()) {
      lang::ExprPtr base = std::move(e.children[0]);
      lang::ExprPtr index = std::move(e.children[1]);
      rename_in_expr(base, renames, widths);
      rename_in_expr(index, renames, widths);
      e_ptr = lower_index(std::move(base), std::move(index), it->second);
      return;
    }
  }
  // Plain dereference of a flattened pointer gets the same treatment.
  if (e.kind == lang::ExprKind::kUnary && e.text == "*" &&
      e.children[0]->kind == lang::ExprKind::kIdentifier) {
    const auto it = widths.find(e.children[0]->text);
    if (it != widths.end()) {
      lang::ExprPtr base = std::move(e.children[0]);
      rename_in_expr(base, renames, widths);
      e_ptr = lower_index(std::move(base), make_number(0), it->second);
      return;
    }
  }
  for (auto& c : e.children)
    if (c) rename_in_expr(c, renames, widths);
}

bool is_plain_pointer(const std::string& type_text) {
  return type_text.find('*') != std::string::npos &&
         type_text.find('(') == std::string::npos &&
         type_text.find('[') == std::string::npos;
}

// Pointee width of "T *": width of T via the interpreter's type model.
std::size_t pointee_width(const std::string& pointer_type) {
  return lang::Machine::pointee_width_of(pointer_type);
}

void collect_and_rename(lang::Stmt& s,
                        std::map<std::string, std::string>& renames,
                        std::map<std::string, std::string>& retypes,
                        WidthMap& widths, int& local_counter) {
  for (auto& d : s.decls) {
    if (renames.find(d.name) == renames.end())
      renames.emplace(d.name, "v" + std::to_string(local_counter++));
    if (is_plain_pointer(d.type_text))
      widths.emplace(d.name, pointee_width(d.type_text));
    const std::string flat = flatten_type(d.type_text);
    retypes.emplace(d.type_text, flat);
    // Array suffixes survive flattening so the declaration stays valid.
    const std::size_t bracket = d.type_text.find('[');
    d.type_text =
        bracket == std::string::npos ? flat : flat + d.type_text.substr(bracket);
    d.name = renames.at(d.name);
    if (d.init) rename_in_expr(d.init, renames, widths);
  }
  for (auto& e : s.exprs)
    if (e) rename_in_expr(e, renames, widths);
  for (auto& b : s.body)
    if (b) collect_and_rename(*b, renames, retypes, widths, local_counter);
}

}  // namespace

std::string flatten_type(const std::string& type_text) {
  // Function pointers and all other pointers flatten to a 64-bit integer,
  // matching Hex-Rays' habit of losing pointee types.
  if (type_text.find('(') != std::string::npos) return "__int64";
  if (type_text.find('*') != std::string::npos) return "__int64";
  std::string t = type_text;
  // Strip qualifiers the decompiler drops.
  for (const char* qual : {"const ", "static ", "restrict ", "volatile ",
                           "register ", "struct "})
    t = util::replace_all(t, qual, "");
  const bool is_unsigned = util::starts_with(t, "unsigned ") ||
                           t == "unsigned" || util::starts_with(t, "uint");
  if (t == "size_t" || t == "unsigned long" || t == "uint64_t" ||
      t == "unsigned __int64")
    return "unsigned __int64";
  if (t == "long" || t == "int64_t" || t == "__int64" || t == "ssize_t" ||
      t == "intptr_t")
    return "__int64";
  if (t.find("char") != std::string::npos) return "char";
  if (t.find("short") != std::string::npos)
    return is_unsigned ? "unsigned __int16" : "__int16";
  if (t == "void") return "void";
  if (t == "float" || t == "double") return t;
  return is_unsigned ? "unsigned int" : "int";
}

PseudoDecompileResult pseudo_decompile(std::string_view original_source,
                                       const lang::ParseOptions& options) {
  lang::Function fn = lang::parse_function(original_source, options);

  PseudoDecompileResult out;
  WidthMap widths;
  int arg_counter = 1;
  for (auto& p : fn.params) {
    if (!p.name.empty()) {
      if (is_plain_pointer(p.type_text))
        widths.emplace(p.name, pointee_width(p.type_text));
      out.rename_map.emplace(p.name, "a" + std::to_string(arg_counter));
      p.name = "a" + std::to_string(arg_counter);
      ++arg_counter;
    }
    const std::string flat = flatten_type(p.type_text);
    out.retype_map.emplace(p.type_text, flat);
    p.type_text = flat;
  }
  out.retype_map.emplace(fn.return_type, flatten_type(fn.return_type));
  fn.return_type = flatten_type(fn.return_type);

  int local_counter = arg_counter + 2;  // Hex-Rays skips a few v-numbers
  if (fn.body) collect_and_rename(*fn.body, out.rename_map, out.retype_map,
                                  widths, local_counter);
  out.source = lang::to_source(fn);
  return out;
}

}  // namespace decompeval::decompiler
