#include "decompiler/generator.h"

#include <algorithm>
#include <set>

#include "decompiler/pseudo_decompiler.h"
#include "embed/corpus.h"
#include "lang/interp.h"
#include "lang/printer.h"
#include "util/check.h"
#include "util/strings.h"

namespace decompeval::decompiler {

namespace {

void rename_expr_tree(lang::Expr& e,
                      const std::map<std::string, std::string>& names) {
  if (e.kind == lang::ExprKind::kIdentifier) {
    const auto it = names.find(e.text);
    if (it != names.end()) e.text = it->second;
  }
  for (auto& c : e.children)
    if (c) rename_expr_tree(*c, names);
}

void rename_stmt_tree(lang::Stmt& s,
                      const std::map<std::string, std::string>& names,
                      const std::map<std::string, std::string>& types) {
  for (auto& d : s.decls) {
    const auto nit = names.find(d.name);
    if (nit != names.end()) d.name = nit->second;
    const std::size_t bracket = d.type_text.find('[');
    const std::string base = bracket == std::string::npos
                                 ? d.type_text
                                 : d.type_text.substr(0, bracket);
    const auto tit = types.find(base);
    if (tit != types.end())
      d.type_text = bracket == std::string::npos
                        ? tit->second
                        : tit->second + d.type_text.substr(bracket);
    if (d.init) rename_expr_tree(*d.init, names);
  }
  for (auto& e : s.exprs)
    if (e) rename_expr_tree(*e, names);
  for (auto& b : s.body)
    if (b) rename_stmt_tree(*b, names, types);
}

// One function template. `source` uses ${slot} placeholders filled from the
// slot list; `key_variables` are the slots a comprehension question hinges
// on.
struct FunctionTemplate {
  const char* name;
  const char* description;
  const char* source;
  std::vector<const char*> slots;       // slot id = cluster concept_id
  std::vector<const char*> key_slots;   // slots questions hinge on
  const char* q1_prompt;
  const char* q1_key;
  const char* q2_prompt;
  const char* q2_key;
};

const std::vector<FunctionTemplate>& function_templates() {
  static const std::vector<FunctionTemplate> kTemplates = {
      {"copy_transform",
       "Copies a source buffer into a destination buffer applying a mask.",
       R"(void ${fn}(unsigned char *${dest}, const unsigned char *${source}, size_t ${size}, unsigned char ${flag}) {
  size_t ${index};
  unsigned int ${sum};
  ${sum} = 0;
  ${index} = 0;
  while (${index} < ${size}) {
    ${dest}[${index}] = (unsigned char)(${source}[${index}] ^ ${flag});
    ${sum} = ${sum} + ${dest}[${index}];
    ${index} = ${index} + 1;
  }
  if (${size} > 0)
    ${dest}[${size} - 1] = (unsigned char)${sum};
})",
       {"dest", "source", "size", "flag", "index", "sum"},
       {"source", "flag"},
       "Which argument selects the transformation applied to each byte?",
       "The mask/flag argument: every byte is XORed with it.",
       "What is written to the final byte of the destination?",
       "The low byte of the running sum of transformed bytes."},
      {"find_entry",
       "Searches an array for a matching key and returns its index.",
       R"(int ${fn}(const int *${array}, int ${size}, int ${key}) {
  int ${index};
  int ${result};
  ${result} = -1;
  for (${index} = 0; ${index} < ${size}; ${index} = ${index} + 1) {
    if (${array}[${index}] == ${key}) {
      ${result} = ${index};
      break;
    }
  }
  return ${result};
})",
       {"array", "size", "key", "index", "result"},
       {"key", "result"},
       "What are the potential return values of this function?",
       "-1 when the key is absent; otherwise the index of the first match.",
       "Which argument is compared against the array elements?",
       "The key argument."},
      {"append_separated",
       "Appends a suffix to a buffer keeping exactly one separator.",
       R"(size_t ${fn}(char *${dest}, size_t ${size}, const char *${source}, size_t ${len}) {
  size_t ${index};
  size_t ${sum};
  ${sum} = ${size};
  if (${size} > 0 && ${dest}[${size} - 1] != 47) {
    ${dest}[${sum}] = 47;
    ${sum} = ${sum} + 1;
  }
  for (${index} = 0; ${index} < ${len}; ${index} = ${index} + 1) {
    ${dest}[${sum}] = ${source}[${index}];
    ${sum} = ${sum} + 1;
  }
  ${dest}[${sum}] = 0;
  return ${sum};
})",
       {"dest", "size", "source", "len", "index", "sum"},
       {"source", "sum"},
       "Under what condition is the separator byte written?",
       "Only when the buffer is non-empty and does not already end with it.",
       "What does the function return?",
       "The new length of the buffer (excluding the terminator)."},
      {"walk_chain",
       "Walks a linked chain accumulating a weight until a limit.",
       R"(int ${fn}(const int *${entry}, int ${size}, int ${weight}) {
  int ${index};
  int ${sum};
  int ${result};
  ${sum} = 0;
  ${result} = 0;
  ${index} = 0;
  while (${index} >= 0 && ${index} < ${size}) {
    ${sum} = ${sum} + ${weight};
    if (${sum} > 100) {
      ${result} = ${index};
      break;
    }
    ${index} = ${entry}[${index}];
  }
  return ${result};
})",
       {"entry", "size", "weight", "index", "sum", "result"},
       {"entry", "sum"},
       "What terminates the walk besides the accumulated limit?",
       "A next-index outside [0, size) — the chain escaping its bounds.",
       "What value does the function return when the limit is hit?",
       "The position at which the accumulated weight first exceeded 100."},
      {"count_matches",
       "Counts elements passing a threshold filter.",
       R"(int ${fn}(const int *${array}, int ${size}, int ${weight}) {
  int ${index};
  int ${count};
  ${count} = 0;
  for (${index} = 0; ${index} < ${size}; ${index} = ${index} + 1) {
    if (${array}[${index}] >= ${weight})
      ${count} = ${count} + 1;
  }
  return ${count};
})",
       {"array", "size", "weight", "index", "count"},
       {"weight", "count"},
       "Which argument acts as the filter threshold?",
       "The threshold/weight argument compared with >= against elements.",
       "What does the function return for an empty array?",
       "Zero — the loop body never runs."},
      {"reverse_prefix",
       "Reverses the first N bytes of a buffer in place.",
       R"(void ${fn}(unsigned char *${buffer}, int ${size}) {
  int ${index};
  int ${count};
  unsigned char ${temp};
  ${index} = 0;
  ${count} = ${size} - 1;
  while (${index} < ${count}) {
    ${temp} = ${buffer}[${index}];
    ${buffer}[${index}] = ${buffer}[${count}];
    ${buffer}[${count}] = ${temp};
    ${index} = ${index} + 1;
    ${count} = ${count} - 1;
  }
})",
       {"buffer", "size", "index", "count", "temp"},
       {"buffer", "temp"},
       "What is the role of the temporary variable inside the loop?",
       "It holds one byte during the swap of the two ends.",
       "Which elements are left untouched when the length is odd?",
       "The middle byte — the two cursors meet there and the loop stops."},
      {"scan_maximum",
       "Finds the value and position of the largest element.",
       R"(int ${fn}(const int *${array}, int ${size}, int *${result}) {
  int ${index};
  int ${sum};
  int ${pos};
  ${sum} = ${array}[0];
  ${pos} = 0;
  for (${index} = 1; ${index} < ${size}; ${index} = ${index} + 1) {
    if (${array}[${index}] > ${sum}) {
      ${sum} = ${array}[${index}];
      ${pos} = ${index};
    }
  }
  *${result} = ${pos};
  return ${sum};
})",
       {"array", "size", "result", "index", "sum", "pos"},
       {"result", "pos"},
       "What is written through the pointer argument?",
       "The index/position of the maximum element.",
       "What does the function itself return?",
       "The maximum value found in the scan."},
      {"fold_checksum",
       "Computes a rolling xor-and-shift checksum over a buffer.",
       R"(unsigned int ${fn}(const unsigned char *${buffer}, int ${size}, unsigned int ${key}) {
  int ${index};
  unsigned int ${sum};
  ${sum} = ${key};
  for (${index} = 0; ${index} < ${size}; ${index} = ${index} + 1) {
    ${sum} = ${sum} ^ ${buffer}[${index}];
    ${sum} = ((${sum} << 1) | (${sum} >> 31)) & 4294967295;
  }
  return ${sum};
})",
       {"buffer", "size", "key", "index", "sum"},
       {"key", "sum"},
       "How does the seed argument influence the result?",
       "It initializes the accumulator that every byte is folded into.",
       "What happens to the accumulator after each byte is mixed in?",
       "It is rotated left by one bit within 32 bits."},
  };
  return kTemplates;
}

std::string pick_member(const std::string& concept_id, util::Rng& rng) {
  for (const auto& cluster : embed::concept_clusters()) {
    if (cluster.concept_id == concept_id)
      return cluster.members[rng.uniform_index(cluster.members.size())];
  }
  // Slots not named after a cluster map to the closest concept.
  if (concept_id == "count" || concept_id == "len")
    return pick_member("size", rng);
  if (concept_id == "pos") return pick_member("index", rng);
  throw PreconditionError("template slot has no cluster: " + concept_id);
}

}  // namespace

std::string apply_renames(const std::string& source,
                          const std::map<std::string, std::string>& name_map,
                          const std::map<std::string, std::string>& type_map,
                          const lang::ParseOptions& options) {
  lang::Function fn = lang::parse_function(source, options);
  for (auto& p : fn.params) {
    const auto nit = name_map.find(p.name);
    if (nit != name_map.end()) p.name = nit->second;
    const auto tit = type_map.find(p.type_text);
    if (tit != type_map.end()) p.type_text = tit->second;
  }
  const auto rit = type_map.find(fn.return_type);
  if (rit != type_map.end()) fn.return_type = rit->second;
  if (fn.body) rename_stmt_tree(*fn.body, name_map, type_map);
  return lang::to_source(fn);
}

std::vector<snippets::Snippet> generate_snippets(std::size_t count,
                                                 const GeneratorConfig& config) {
  DE_EXPECTS(count > 0);
  config.recovery_rates.validate();
  util::Rng rng(config.seed);
  DirtyModel dirty(config.recovery_rates, config.seed ^ 0xD127ULL);

  std::vector<snippets::Snippet> out;
  out.reserve(count);
  const auto& templates = function_templates();

  for (std::size_t i = 0; i < count; ++i) {
    const FunctionTemplate& tpl = templates[i % templates.size()];

    // Fill slots with cluster-sampled names, keeping them distinct.
    std::map<std::string, std::string> slot_names;
    std::set<std::string> used;
    for (const char* slot : tpl.slots) {
      std::string name;
      for (int attempt = 0; attempt < 16; ++attempt) {
        name = pick_member(slot, rng);
        if (used.insert(name).second) break;
        name.clear();
      }
      if (name.empty()) {
        name = std::string(slot) + std::to_string(i);
        used.insert(name);
      }
      slot_names[slot] = name;
    }
    const std::string fn_name =
        std::string(tpl.name) + "_" + std::to_string(i + 1);

    std::string original = tpl.source;
    original = util::replace_all(original, "${fn}", fn_name);
    for (const auto& [slot, name] : slot_names)
      original = util::replace_all(original, "${" + slot + "}", name);

    // Hex-Rays variant.
    const PseudoDecompileResult hexrays = pseudo_decompile(original);

    // DIRTY variant: recover each renamed identifier.
    snippets::Snippet s;
    std::map<std::string, std::string> dirty_names;
    std::map<std::string, RecoveryOutcome> outcome_by_original;
    std::set<std::string> used_names;
    for (const auto& [orig, placeholder] : hexrays.rename_map) {
      const RecoveredName r = dirty.recover_name(orig, placeholder);
      // Distinct variables must keep distinct names or the rename pass
      // would merge them; disambiguate the way IDA/DIRTY outputs do —
      // appending letters (the paper's AEEK shows `indexa`).
      std::string unique = r.recovered;
      for (char suffix = 'a'; !used_names.insert(unique).second; ++suffix)
        unique = r.recovered + suffix;
      dirty_names[placeholder] = unique;
      outcome_by_original[orig] = r.outcome;
      s.variable_alignment.push_back({orig, unique});
    }
    std::map<std::string, std::string> dirty_types;
    for (const auto& [orig_type, flat_type] : hexrays.retype_map) {
      const RecoveredName r = dirty.recover_type(orig_type, flat_type);
      s.type_alignment.push_back({orig_type, r.recovered});
      if (r.outcome == RecoveryOutcome::kPlaceholder) continue;
      // Apply the recovered type to the source only when it preserves
      // semantics: all address arithmetic in the flattened code is byte-
      // scaled, so only unit-pointee pointer types (char*/void*/_BYTE*) or
      // non-pointer types of the same width may be substituted textually.
      const bool is_pointer = r.recovered.find('*') != std::string::npos;
      const bool unit_pointee =
          is_pointer && lang::Machine::pointee_width_of(r.recovered) == 1;
      const bool same_width_scalar =
          !is_pointer && lang::Machine::width_of(r.recovered) ==
                             lang::Machine::width_of(flat_type);
      if (unit_pointee || same_width_scalar)
        dirty_types[flat_type] = r.recovered;
    }
    const std::string dirty_source =
        apply_renames(hexrays.source, dirty_names, dirty_types, {});

    s.id = "SYN-" + std::to_string(i + 1);
    s.function_name = fn_name;
    s.project = "synthetic";
    s.description = tpl.description;
    s.original_source = original;
    s.hexrays_source = hexrays.source;
    s.dirty_source = dirty_source;
    // Recovered types may introduce typedef-looking names.
    s.parse_options.typedef_names = {"SSL", "BIGNUM", "FILE", "tree234",
                                     "array_t_0", "cmpfn234"};

    // Question calibration derived from sampled annotation quality on the
    // template's key variables.
    double shift = 0.0;
    double trust_penalty = 0.0;
    int n_recovered = 0, n_misleading = 0;
    for (const char* key_slot : tpl.key_slots) {
      const std::string& orig_name = slot_names.at(key_slot);
      const auto it = outcome_by_original.find(orig_name);
      if (it == outcome_by_original.end()) continue;
      switch (it->second) {
        case RecoveryOutcome::kExact:
        case RecoveryOutcome::kSynonym:
          shift += config.helpful_shift;
          ++n_recovered;
          break;
        case RecoveryOutcome::kRelated:
          shift += config.helpful_shift / 2.0;
          ++n_recovered;
          break;
        case RecoveryOutcome::kMisleading:
          shift -= config.helpful_shift;
          trust_penalty += config.misleading_trust_penalty;
          ++n_misleading;
          break;
        case RecoveryOutcome::kPlaceholder:
          break;
      }
    }

    snippets::QuestionSpec q1;
    q1.id = s.id + "-Q1";
    q1.prompt = tpl.q1_prompt;
    q1.answer_key = tpl.q1_key;
    q1.base_seconds = rng.uniform(150.0, 320.0);
    q1.base_difficulty = rng.normal(0.3, 0.8);
    q1.dirty_correctness_shift = shift;
    q1.trust_penalty = trust_penalty;
    q1.dirty_time_factor = n_misleading > 0 ? 1.15 : 0.95;

    snippets::QuestionSpec q2;
    q2.id = s.id + "-Q2";
    q2.prompt = tpl.q2_prompt;
    q2.answer_key = tpl.q2_key;
    q2.base_seconds = rng.uniform(150.0, 320.0);
    q2.base_difficulty = rng.normal(0.0, 0.8);
    q2.dirty_correctness_shift = shift;
    q2.trust_penalty = trust_penalty;
    q2.dirty_time_factor = n_misleading > 0 ? 1.2 : 0.95;
    s.questions = {q1, q2};

    const double quality =
        static_cast<double>(n_recovered) /
        static_cast<double>(std::max<std::size_t>(tpl.key_slots.size(), 1));
    s.dirty_name_quality = 0.4 + 0.5 * quality - 0.2 * n_misleading;
    s.dirty_name_quality = std::clamp(s.dirty_name_quality, 0.05, 0.95);
    s.dirty_type_quality =
        std::clamp(0.35 + 0.4 * quality - 0.25 * n_misleading, 0.05, 0.95);

    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace decompeval::decompiler
