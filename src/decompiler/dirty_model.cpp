#include "decompiler/dirty_model.h"

#include <array>
#include <set>

#include "embed/corpus.h"
#include "text/tokenize.h"
#include "util/check.h"

namespace decompeval::decompiler {

namespace {

// Finds the cluster containing any subtoken of `name`; returns nullptr if
// the name is out-of-lexicon.
const embed::ConceptCluster* find_cluster(const std::string& name) {
  const auto subtokens = text::split_identifier(name);
  for (const auto& cluster : embed::concept_clusters()) {
    for (const auto& member : cluster.members) {
      for (const auto& sub : subtokens)
        if (sub == member) return &cluster;
    }
  }
  return nullptr;
}

// Words that cannot be variable names in the emitted pseudocode.
bool is_reserved(const std::string& name) {
  static const std::set<std::string> kReserved = {
      "char", "int",    "long",  "short",  "unsigned", "signed", "void",
      "float", "double", "bool",  "return", "break",    "if",     "else",
      "while", "for",    "do",    "const",  "struct",   "union",  "enum",
      "sizeof", "continue", "switch", "case", "static", "register"};
  return kReserved.count(name) > 0;
}

std::string pick_other(const std::vector<std::string>& pool,
                       const std::string& avoid, util::Rng& rng) {
  DE_ENSURES(!pool.empty());
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string& candidate = pool[rng.uniform_index(pool.size())];
    if (candidate != avoid && !is_reserved(candidate)) return candidate;
  }
  for (const std::string& candidate : pool)
    if (candidate != avoid && !is_reserved(candidate)) return candidate;
  return avoid + "_x";  // degenerate pool: keep it parseable
}

const char* kFallbackTypes[] = {"SSL *",     "BIGNUM *", "FILE *",
                                "tree234 *", "array_t_0 *", "cmpfn234"};

}  // namespace

const char* to_string(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kExact: return "exact";
    case RecoveryOutcome::kSynonym: return "synonym";
    case RecoveryOutcome::kRelated: return "related";
    case RecoveryOutcome::kMisleading: return "misleading";
    case RecoveryOutcome::kPlaceholder: return "placeholder";
  }
  return "?";
}

void RecoveryRates::validate() const {
  DE_EXPECTS_MSG(exact >= 0 && synonym >= 0 && related >= 0 && misleading >= 0,
                 "recovery rates must be non-negative");
  DE_EXPECTS_MSG(exact + synonym + related + misleading <= 1.0 + 1e-12,
                 "recovery rates must sum to at most 1");
}

DirtyModel::DirtyModel(const RecoveryRates& rates, std::uint64_t seed)
    : rates_(rates), rng_(seed) {
  rates_.validate();
}

RecoveryOutcome DirtyModel::draw_outcome() {
  const std::array<double, 5> weights = {rates_.exact, rates_.synonym,
                                         rates_.related, rates_.misleading,
                                         rates_.placeholder()};
  switch (rng_.categorical(weights)) {
    case 0: return RecoveryOutcome::kExact;
    case 1: return RecoveryOutcome::kSynonym;
    case 2: return RecoveryOutcome::kRelated;
    case 3: return RecoveryOutcome::kMisleading;
    default: return RecoveryOutcome::kPlaceholder;
  }
}

RecoveredName DirtyModel::recover_name(const std::string& original_name,
                                       const std::string& placeholder) {
  RecoveredName out;
  out.original = original_name;
  out.placeholder = placeholder;
  out.outcome = draw_outcome();

  const embed::ConceptCluster* cluster = find_cluster(original_name);
  // Out-of-lexicon names can only be recovered verbatim or left alone.
  if (cluster == nullptr && out.outcome != RecoveryOutcome::kExact &&
      out.outcome != RecoveryOutcome::kPlaceholder) {
    out.outcome = rng_.bernoulli(0.5) ? RecoveryOutcome::kExact
                                      : RecoveryOutcome::kPlaceholder;
  }

  switch (out.outcome) {
    case RecoveryOutcome::kExact:
      out.recovered = original_name;
      break;
    case RecoveryOutcome::kSynonym:
      out.recovered = pick_other(cluster->members, original_name, rng_);
      break;
    case RecoveryOutcome::kRelated:
      out.recovered = pick_other(cluster->contexts, original_name, rng_);
      break;
    case RecoveryOutcome::kMisleading: {
      const auto& clusters = embed::concept_clusters();
      const embed::ConceptCluster* other = cluster;
      while (other == cluster)
        other = &clusters[rng_.uniform_index(clusters.size())];
      out.recovered = pick_other(other->members, original_name, rng_);
      break;
    }
    case RecoveryOutcome::kPlaceholder:
      out.recovered = placeholder;
      break;
  }
  return out;
}

RecoveredName DirtyModel::recover_type(const std::string& original_type,
                                       const std::string& placeholder_type) {
  RecoveredName out;
  out.original = original_type;
  out.placeholder = placeholder_type;
  out.outcome = draw_outcome();
  switch (out.outcome) {
    case RecoveryOutcome::kExact:
      out.recovered = original_type;
      break;
    case RecoveryOutcome::kSynonym: {
      // A structurally equivalent rendering (pointer stays a pointer).
      const bool is_pointer = original_type.find('*') != std::string::npos;
      out.recovered = is_pointer ? "char *" : "int";
      if (out.recovered == original_type) out.recovered = is_pointer ? "void *" : "unsigned int";
      break;
    }
    case RecoveryOutcome::kRelated:
      out.recovered =
          original_type.find('*') != std::string::npos ? "void *" : "unsigned int";
      break;
    case RecoveryOutcome::kMisleading:
      out.recovered = kFallbackTypes[rng_.uniform_index(std::size(kFallbackTypes))];
      break;
    case RecoveryOutcome::kPlaceholder:
      out.recovered = placeholder_type;
      break;
  }
  return out;
}

}  // namespace decompeval::decompiler
