// Function-granular incremental annotation engine.
//
// The served "annotate" op (service/service.h) takes one snippet source —
// possibly several top-level functions — and returns offset-mapped
// annotation spans: lint diagnostics (lang/lint.h, dataflow + SCCP/
// copy-chain/type-flow passes), decompiler-artifact notes, and
// recovered-name suggestions from the DIRTY-like model for placeholder
// variables. This engine is the compute layer behind it.
//
// Incrementality is function-granular: the source is sliced into
// top-level function definitions by brace-matching the token stream, each
// slice is digested (FNV-1a over its raw text), and analysis results are
// cached per digest in an LRU. A single-function edit therefore recomputes
// exactly one slice; every untouched function is served from cache and
// *rebased* — cached annotation spans are slice-relative, so a function
// that merely moved (an edit above it shifted its offsets and lines)
// still hits.
//
// Determinism contract: the annotation payload is a pure function of
// (source, parse options). Cache state and thread count change only
// latency and the hit/miss counters — which are exposed through
// cache_stats() and deliberately never placed in the payload — so a warm
// incremental pass is bit-identical to a cold from-scratch pass.
//
// Fault sites (per function index within the request):
//   "annotate.parse", "annotate.pass" — degrade that one function (its
//   entry is marked degraded with an explanatory note and carries no
//   annotations); the remaining functions still annotate normally.
//   Degraded entries never touch the cache.
#pragma once

#include <atomic>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "lang/parser.h"
#include "lang/source_span.h"
#include "util/fault.h"
#include "util/lru.h"

namespace decompeval::analysis_service {

/// One offset-mapped annotation. Spans are absolute byte ranges into the
/// submitted source (with 1-based line/col of the span start).
struct AnnotationSpan {
  std::string kind;    ///< "diagnostic", "artifact", or "name-suggestion"
  std::string code;    ///< lint code, or the recovery-outcome label
  std::string symbol;  ///< variable / type text involved (may be empty)
  lang::SourceSpan span;
  std::string message;

  auto operator<=>(const AnnotationSpan&) const = default;
};

/// Annotation outcome for one top-level function slice.
struct FunctionAnnotations {
  std::string name;       ///< parsed function name; empty when unparsed
  std::string digest;     ///< hex FNV-1a of the slice text
  lang::SourceSpan span;  ///< slice span, absolute in the submitted source
  bool parsed = false;
  bool degraded = false;  ///< an annotate.* fault hit this function
  std::string note;       ///< parse-error / fault description when not ok
  std::vector<AnnotationSpan> annotations;

  auto operator<=>(const FunctionAnnotations&) const = default;
};

struct AnnotationResult {
  std::vector<FunctionAnnotations> functions;
  bool degraded = false;  ///< any function degraded

  auto operator<=>(const AnnotationResult&) const = default;
};

struct AnnotateOptions {
  /// Worker threads for the per-function fan-out; 0 = auto, 1 = serial.
  /// The payload is bit-identical at any thread count.
  std::size_t threads = 1;
  /// Typedef names forwarded to the parser.
  lang::ParseOptions parse_options;
  /// Optional fault injector (sites "annotate.parse"/"annotate.pass",
  /// hit = function index within this request).
  const util::FaultInjector* faults = nullptr;
};

class AnnotationEngine {
 public:
  /// `cache_capacity` bounds the per-digest LRU (entries; 0 disables
  /// caching — every call recomputes every slice).
  explicit AnnotationEngine(std::size_t cache_capacity = 256);

  /// Annotates every top-level function of `source`. result.functions[i]
  /// is the i-th function in source order. A source that fails to lex (or
  /// contains no braced function) yields a single unparsed entry covering
  /// the whole source — still deterministic, never an exception.
  AnnotationResult annotate(std::string_view source,
                            const AnnotateOptions& options = {});

  struct CacheStats {
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::uint64_t evictions = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  CacheStats cache_stats() const;

  /// Implementation types, public so the .cpp's file-local helpers can
  /// name them; not part of the API surface.
  struct Slice;
  struct CachedFunction;  ///< per-digest analysis, slice-relative spans

 private:
  FunctionAnnotations annotate_slice(std::string_view source, const Slice& s,
                                     std::uint64_t fault_hit,
                                     const AnnotateOptions& options);

  mutable std::mutex mutex_;
  /// Monotone fault-hit base: each annotate() call claims one hit index
  /// per slice, so annotate.* schedules advance across requests (a
  /// once(n) fault fires on exactly one slice of one request) yet stay
  /// independent of thread scheduling and cache warmth.
  std::atomic<std::uint64_t> fault_hits_{0};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  util::LruCache<std::string, std::shared_ptr<const CachedFunction>> cache_;
};

}  // namespace decompeval::analysis_service
