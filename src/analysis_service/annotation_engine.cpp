#include "analysis_service/annotation_engine.h"

#include <cstdio>
#include <exception>
#include <utility>

#include "decompiler/dirty_model.h"
#include "embed/corpus.h"
#include "lang/ast.h"
#include "lang/lexer.h"
#include "lang/lint.h"
#include "lang/source_map.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace decompeval::analysis_service {

namespace {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void collect_placeholder_decls(
    const lang::Stmt& s,
    std::vector<std::pair<std::string, lang::SourceSpan>>* out) {
  for (const auto& d : s.decls)
    if (lang::is_placeholder_name(d.name))
      out->emplace_back(d.name, d.name_span.valid() ? d.name_span : d.span);
  for (const auto& b : s.body)
    if (b) collect_placeholder_decls(*b, out);
}

/// Placeholder-named variables in declaration order: parameters first,
/// then locals in statement order — the order the model consumes its RNG
/// stream in, so suggestions are a pure function of the slice text.
std::vector<std::pair<std::string, lang::SourceSpan>> placeholder_vars(
    const lang::Function& fn) {
  std::vector<std::pair<std::string, lang::SourceSpan>> out;
  for (const auto& p : fn.params)
    if (lang::is_placeholder_name(p.name))
      out.emplace_back(p.name, p.name_span.valid() ? p.name_span : p.span);
  if (fn.body) collect_placeholder_decls(*fn.body, &out);
  return out;
}

}  // namespace

struct AnnotationEngine::Slice {
  std::size_t begin = 0;  ///< absolute byte offset of the slice start
  std::size_t end = 0;    ///< one past the closing brace
  int line = 1;           ///< 1-based position of `begin` in the source
  int col = 1;
};

struct AnnotationEngine::CachedFunction {
  std::string name;
  bool parsed = false;
  std::string note;
  /// Slice-relative spans; rebased to absolute at serve time.
  std::vector<AnnotationSpan> annotations;
};

namespace {

/// Rebases a slice-relative span to the submitted source. Slices may
/// start mid-line (two functions on one line), so columns on the slice's
/// first line shift by the slice column.
lang::SourceSpan rebase_span(const lang::SourceSpan& rel, std::size_t begin,
                             int line, int col) {
  if (!rel.valid()) return {};
  lang::SourceSpan out;
  out.begin = begin + rel.begin;
  out.end = begin + rel.end;
  out.line = line + rel.line - 1;
  out.col = rel.line == 1 ? col + rel.col - 1 : rel.col;
  return out;
}

/// Top-level function slices by brace matching. Each slice runs from the
/// start of the line holding the function's first token (clamped past the
/// previous slice, so back-to-back functions on one line do not overlap)
/// through its closing brace. Stray top-level semicolons between
/// functions belong to no slice.
std::vector<AnnotationEngine::Slice> slice_functions(
    const std::vector<lang::Token>& tokens, const lang::SourceMap& map) {
  std::vector<AnnotationEngine::Slice> out;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t open = kNone;  // index of the slice's first token
  std::size_t prev_end = 0;
  int depth = 0;
  std::size_t last_end = 0;
  for (const auto& t : tokens) {
    if (t.is(lang::TokenKind::kEndOfFile)) break;
    last_end = t.span.end;
    if (open == kNone) {
      if (t.is_punct(";")) continue;
      open = 1;  // any non-EOF marker; the span below is what matters
      AnnotationEngine::Slice s;
      const std::size_t line_start = map.to_offset(t.span.line, 1);
      s.begin = line_start > prev_end ? line_start : prev_end;
      const lang::LineCol at = map.to_line_col(s.begin);
      s.line = at.line;
      s.col = at.col;
      out.push_back(s);
    }
    if (t.is_punct("{")) {
      ++depth;
    } else if (t.is_punct("}")) {
      if (--depth <= 0) {
        depth = 0;
        out.back().end = t.span.end;
        prev_end = t.span.end;
        open = kNone;
      }
    }
  }
  if (open != kNone) {
    // Unbalanced tail: close at the last token so the parse error is
    // reported on a concrete slice.
    out.back().end = last_end > out.back().begin ? last_end
                                                 : out.back().begin;
    prev_end = out.back().end;
  }
  return out;
}

}  // namespace

AnnotationEngine::AnnotationEngine(std::size_t cache_capacity)
    : cache_(cache_capacity) {}

AnnotationEngine::CacheStats AnnotationEngine::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.size = cache_.size();
  s.capacity = cache_.capacity();
  s.evictions = cache_.evictions();
  s.hits = hits_;
  s.misses = misses_;
  return s;
}

namespace {

/// Full (parse + lint + name suggestions) analysis of one slice. Pure:
/// depends only on the slice text and the parse options.
AnnotationEngine::CachedFunction* analyze_slice_into(
    std::string_view text, const lang::ParseOptions& parse_options,
    AnnotationEngine::CachedFunction* cf) {
  lang::Function fn;
  try {
    fn = lang::parse_function(text, parse_options);
  } catch (const std::exception& e) {
    cf->parsed = false;
    cf->note = e.what();
    return cf;
  }
  cf->parsed = true;
  cf->name = fn.name;

  for (const auto& d : lang::lint_function(fn)) {
    AnnotationSpan a;
    a.kind = d.severity == lang::LintSeverity::kNote ? "artifact"
                                                     : "diagnostic";
    a.code = d.code;
    a.symbol = d.symbol;
    a.span = d.span;
    a.message = d.message;
    cf->annotations.push_back(std::move(a));
  }

  // Recovered-name suggestions: for every placeholder-named variable the
  // DIRTY-like model proposes a name. The model needs a ground-truth name
  // to aim at and an interactive request has none, so one is drawn from
  // the concept-cluster lexicon with an RNG seeded by the slice digest —
  // suggestions are stable across repeats and across cache state.
  const auto vars = placeholder_vars(fn);
  if (!vars.empty()) {
    const std::uint64_t seed = fnv1a(text);
    util::Rng pick(seed);
    decompiler::DirtyModel model({}, pick.split_seed(1));
    const auto& clusters = embed::concept_clusters();
    for (const auto& [name, span] : vars) {
      if (clusters.empty()) break;
      const auto& cluster = clusters[pick.uniform_index(clusters.size())];
      if (cluster.members.empty()) continue;
      const std::string& target =
          cluster.members[pick.uniform_index(cluster.members.size())];
      const decompiler::RecoveredName rec = model.recover_name(target, name);
      AnnotationSpan a;
      a.kind = "name-suggestion";
      a.code = decompiler::to_string(rec.outcome);
      a.symbol = name;
      a.span = span;
      a.message = rec.recovered == name
                      ? "model keeps placeholder '" + name + "'"
                      : "model suggests '" + rec.recovered +
                            "' for placeholder '" + name + "'";
      cf->annotations.push_back(std::move(a));
    }
  }
  return cf;
}

std::string typedef_tag(const lang::ParseOptions& options) {
  std::string tag;
  for (const auto& name : options.typedef_names) {
    tag += '|';
    tag += name;
  }
  return tag;
}

}  // namespace

FunctionAnnotations AnnotationEngine::annotate_slice(
    std::string_view source, const Slice& s, std::uint64_t fault_hit,
    const AnnotateOptions& options) {
  FunctionAnnotations out;
  out.span = {s.begin, s.end, s.line, s.col};
  const std::string_view text = source.substr(s.begin, s.end - s.begin);
  out.digest = hex64(fnv1a(text));

  // Faults degrade this one function and bypass the cache entirely —
  // whether the slice was warm must not change which hits fire.
  if (options.faults != nullptr) {
    try {
      options.faults->raise_if("annotate.parse", fault_hit);
      options.faults->raise_if("annotate.pass", fault_hit);
    } catch (const util::FaultError& e) {
      out.degraded = true;
      out.note = e.what();
      return out;
    }
  }

  // Typedef names change parse results, so they qualify the cache key;
  // the response's digest field stays a pure content digest.
  const std::string key = out.digest + typedef_tag(options.parse_options);
  std::shared_ptr<const CachedFunction> entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto* hit = cache_.find(key)) {
      entry = *hit;
      ++hits_;
    } else {
      ++misses_;
    }
  }
  if (entry == nullptr) {
    auto computed = std::make_shared<CachedFunction>();
    analyze_slice_into(text, options.parse_options, computed.get());
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      cache_.put(key, computed);
    }
    entry = std::move(computed);
  }

  out.name = entry->name;
  out.parsed = entry->parsed;
  out.note = entry->note;
  out.annotations.reserve(entry->annotations.size());
  for (const auto& a : entry->annotations) {
    AnnotationSpan abs = a;
    abs.span = rebase_span(a.span, s.begin, s.line, s.col);
    out.annotations.push_back(std::move(abs));
  }
  return out;
}

AnnotationResult AnnotationEngine::annotate(std::string_view source,
                                            const AnnotateOptions& options) {
  AnnotationResult result;
  std::vector<lang::Token> tokens;
  try {
    tokens = lang::lex(source);
  } catch (const std::exception& e) {
    FunctionAnnotations f;
    f.digest = hex64(fnv1a(source));
    f.span = {0, source.size(), 1, 1};
    f.note = std::string("lex error: ") + e.what();
    result.functions.push_back(std::move(f));
    return result;
  }
  const lang::SourceMap map(source);
  std::vector<Slice> slices = slice_functions(tokens, map);
  if (slices.empty()) {
    // No braced function at all; let the parser report it on one slice.
    Slice whole;
    whole.end = source.size();
    slices.push_back(whole);
  }
  // One fault-hit index per slice, claimed up front: the mapping from
  // (request order, slice index) to hit is fixed before any thread runs.
  const std::uint64_t fault_base = fault_hits_.fetch_add(slices.size());
  result.functions = util::parallel_map(
      options.threads, slices, [&](const Slice& s, std::size_t i) {
        return annotate_slice(source, s, fault_base + i, options);
      });
  for (const auto& f : result.functions)
    if (f.degraded) result.degraded = true;
  return result;
}

}  // namespace decompeval::analysis_service
