// Classical hypothesis tests used by the paper's analyses:
//  - Wilcoxon rank-sum with continuity correction (RQ3, trust analysis)
//  - Fisher's exact 2×2 test (postorder Q2, Fig. 5)
//  - Welch's two-sample t-test (Fig. 6 BAPL timing)
// Implementations mirror R's defaults where the paper reports R output.
#pragma once

#include <span>

namespace decompeval::stats {

struct WilcoxonResult {
  double w = 0.0;        ///< rank-sum statistic (R's W: U of sample x)
  double z = 0.0;        ///< continuity-corrected normal approximation
  double p_value = 1.0;  ///< two-sided
  /// Hodges–Lehmann estimate of the location shift (median of pairwise
  /// differences x_i − y_j), R's "difference in location".
  double location_shift = 0.0;
};

/// Wilcoxon rank-sum (Mann–Whitney) test, tie-corrected normal
/// approximation with continuity correction, matching R's wilcox.test with
/// exact=FALSE, correct=TRUE. Requires both samples non-empty.
WilcoxonResult wilcoxon_rank_sum(std::span<const double> x,
                                 std::span<const double> y);

struct FisherExactResult {
  double p_value = 1.0;     ///< two-sided, sum of tables with pmf <= observed
  double odds_ratio = 1.0;  ///< sample (unconditional) odds ratio
};

/// Fisher's exact test on the 2×2 table [[a, b], [c, d]].
FisherExactResult fisher_exact(unsigned a, unsigned b, unsigned c, unsigned d);

struct WelchResult {
  double t = 0.0;
  double df = 0.0;  ///< Welch–Satterthwaite degrees of freedom
  double p_value = 1.0;
  double mean_x = 0.0;
  double mean_y = 0.0;
};

/// Welch's two-sample t-test (unequal variances). Requires both samples to
/// have at least 2 observations and positive variance in at least one.
WelchResult welch_t_test(std::span<const double> x, std::span<const double> y);

/// Krippendorff's alpha for inter-rater reliability.
/// `ratings[r][u]` is rater r's rating of unit u; NaN marks a missing
/// rating. Requires >= 2 raters and >= 1 unit rated by >= 2 raters.
enum class AlphaMetric { kNominal, kOrdinal, kInterval };
double krippendorff_alpha(std::span<const std::span<const double>> ratings,
                          AlphaMetric metric);

}  // namespace decompeval::stats
