#include "stats/tests.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "statdist/distributions.h"
#include "stats/descriptive.h"
#include "stats/ranks.h"
#include "util/check.h"

namespace decompeval::stats {

WilcoxonResult wilcoxon_rank_sum(std::span<const double> x,
                                 std::span<const double> y) {
  DE_EXPECTS(!x.empty() && !y.empty());
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());

  std::vector<double> pooled;
  pooled.reserve(x.size() + y.size());
  pooled.insert(pooled.end(), x.begin(), x.end());
  pooled.insert(pooled.end(), y.begin(), y.end());
  const RankResult rr = mid_ranks(pooled);

  double rank_sum_x = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rank_sum_x += rr.ranks[i];

  WilcoxonResult out;
  // R reports W = U of the first sample.
  out.w = rank_sum_x - nx * (nx + 1.0) / 2.0;

  const double n = nx + ny;
  const double mu = nx * ny / 2.0;
  const double tie_term = rr.tie_correction / (n * (n - 1.0));
  const double sigma2 = nx * ny / 12.0 * ((n + 1.0) - tie_term);
  DE_ENSURES_MSG(sigma2 > 0.0, "degenerate Wilcoxon variance (all ties)");
  const double sigma = std::sqrt(sigma2);

  // Continuity correction toward the mean.
  const double diff = out.w - mu;
  double correction = 0.0;
  if (diff > 0.0) correction = -0.5;
  else if (diff < 0.0) correction = 0.5;
  out.z = (diff + correction) / sigma;
  out.p_value = 2.0 * (1.0 - statdist::normal_cdf(std::abs(out.z)));
  out.p_value = std::min(out.p_value, 1.0);

  // Hodges–Lehmann shift estimate.
  std::vector<double> diffs;
  diffs.reserve(x.size() * y.size());
  for (const double xi : x)
    for (const double yj : y) diffs.push_back(xi - yj);
  out.location_shift = median(std::move(diffs));
  return out;
}

FisherExactResult fisher_exact(unsigned a, unsigned b, unsigned c,
                               unsigned d) {
  // Condition on margins: row1 = a+b, col1 = a+c, N = a+b+c+d.
  const unsigned row1 = a + b;
  const unsigned col1 = a + c;
  const unsigned N = a + b + c + d;
  DE_EXPECTS_MSG(N > 0, "empty contingency table");

  const double p_obs = statdist::hypergeometric_pmf(a, col1, N, row1);
  const unsigned k_min = col1 + row1 > N ? col1 + row1 - N : 0;
  const unsigned k_max = std::min(col1, row1);
  double total = 0.0;
  const double tol = 1.0 + 1e-7;
  for (unsigned k = k_min; k <= k_max; ++k) {
    const double pk = statdist::hypergeometric_pmf(k, col1, N, row1);
    if (pk <= p_obs * tol) total += pk;
  }

  FisherExactResult out;
  out.p_value = std::min(total, 1.0);
  if (b == 0 || c == 0) {
    out.odds_ratio = std::numeric_limits<double>::infinity();
    if (a == 0 || d == 0) out.odds_ratio = std::nan("");
  } else {
    out.odds_ratio = (static_cast<double>(a) * d) /
                     (static_cast<double>(b) * c);
  }
  return out;
}

WelchResult welch_t_test(std::span<const double> x, std::span<const double> y) {
  DE_EXPECTS(x.size() >= 2 && y.size() >= 2);
  WelchResult out;
  out.mean_x = mean(x);
  out.mean_y = mean(y);
  const double vx = sample_variance(x);
  const double vy = sample_variance(y);
  const double nx = static_cast<double>(x.size());
  const double ny = static_cast<double>(y.size());
  const double se2 = vx / nx + vy / ny;
  DE_EXPECTS_MSG(se2 > 0.0, "both samples constant");
  out.t = (out.mean_x - out.mean_y) / std::sqrt(se2);
  out.df = se2 * se2 /
           (vx * vx / (nx * nx * (nx - 1.0)) + vy * vy / (ny * ny * (ny - 1.0)));
  out.p_value = statdist::student_t_two_sided_p(out.t, out.df);
  return out;
}

double krippendorff_alpha(std::span<const std::span<const double>> ratings,
                          AlphaMetric metric) {
  DE_EXPECTS_MSG(ratings.size() >= 2, "need at least two raters");
  const std::size_t n_units = ratings.front().size();
  for (const auto& row : ratings)
    DE_EXPECTS_MSG(row.size() == n_units, "ragged rating matrix");

  // Collect the category set (distinct observed values, ordered).
  std::map<double, std::size_t> category_index;
  for (const auto& row : ratings)
    for (const double v : row)
      if (!std::isnan(v)) category_index.emplace(v, 0);
  DE_EXPECTS_MSG(!category_index.empty(), "no ratings present");
  std::vector<double> values;
  values.reserve(category_index.size());
  for (auto& [value, index] : category_index) {
    index = values.size();
    values.push_back(value);
  }
  const std::size_t k = values.size();

  // Coincidence matrix.
  std::vector<std::vector<double>> o(k, std::vector<double>(k, 0.0));
  double n_pairable = 0.0;
  for (std::size_t u = 0; u < n_units; ++u) {
    std::vector<std::size_t> unit;
    for (const auto& row : ratings)
      if (!std::isnan(row[u])) unit.push_back(category_index.at(row[u]));
    const double m = static_cast<double>(unit.size());
    if (m < 2.0) continue;
    n_pairable += m;
    for (std::size_t i = 0; i < unit.size(); ++i)
      for (std::size_t j = 0; j < unit.size(); ++j)
        if (i != j) o[unit[i]][unit[j]] += 1.0 / (m - 1.0);
  }
  DE_EXPECTS_MSG(n_pairable >= 2.0, "no unit rated by two or more raters");

  std::vector<double> marginal(k, 0.0);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t g = 0; g < k; ++g) marginal[c] += o[c][g];

  const auto delta2 = [&](std::size_t c, std::size_t g) -> double {
    if (c == g) return 0.0;
    switch (metric) {
      case AlphaMetric::kNominal:
        return 1.0;
      case AlphaMetric::kInterval: {
        const double d = values[c] - values[g];
        return d * d;
      }
      case AlphaMetric::kOrdinal: {
        const std::size_t lo = std::min(c, g);
        const std::size_t hi = std::max(c, g);
        double s = 0.0;
        for (std::size_t t = lo; t <= hi; ++t) s += marginal[t];
        s -= (marginal[lo] + marginal[hi]) / 2.0;
        return s * s;
      }
    }
    return 0.0;
  };

  double d_observed = 0.0;
  double d_expected = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t g = 0; g < k; ++g) {
      const double d2 = delta2(c, g);
      d_observed += o[c][g] * d2;
      d_expected += marginal[c] * marginal[g] * d2;
    }
  }
  d_expected /= (n_pairable - 1.0);
  if (d_expected == 0.0) return 1.0;  // all ratings identical
  return 1.0 - d_observed / d_expected;
}

}  // namespace decompeval::stats
