// Mid-rank computation with tie bookkeeping, shared by the Spearman,
// Wilcoxon and Kruskal-style procedures.
#pragma once

#include <span>
#include <vector>

namespace decompeval::stats {

struct RankResult {
  /// Mid-ranks, 1-based, aligned with the input order.
  std::vector<double> ranks;
  /// Σ (t³ − t) over tie groups of size t — the standard tie-correction
  /// term for rank-test variances.
  double tie_correction = 0.0;
  /// Number of tie groups with size > 1.
  std::size_t tie_groups = 0;
};

/// Assigns mid-ranks (average rank within tie groups). Requires non-empty
/// input with no NaNs.
RankResult mid_ranks(std::span<const double> x);

}  // namespace decompeval::stats
