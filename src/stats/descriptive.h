// Descriptive statistics over double samples.
#pragma once

#include <span>
#include <vector>

namespace decompeval::stats {

double mean(std::span<const double> x);

/// Unbiased sample variance (n−1 denominator); requires n >= 2.
double sample_variance(std::span<const double> x);

double sample_sd(std::span<const double> x);

/// Median (average of middle two for even n); requires non-empty input.
double median(std::vector<double> x);

/// Quantile with linear interpolation between order statistics (R type 7).
/// Requires non-empty input and q in [0, 1].
double quantile(std::vector<double> x, double q);

struct FiveNumberSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// Five-number summary used by the box-plot style figures (6 & 7).
FiveNumberSummary five_number_summary(std::vector<double> x);

}  // namespace decompeval::stats
