#include "stats/ranks.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace decompeval::stats {

RankResult mid_ranks(std::span<const double> x) {
  DE_EXPECTS(!x.empty());
  for (const double v : x) DE_EXPECTS_MSG(!std::isnan(v), "NaN in rank input");
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&x](std::size_t a, std::size_t b) { return x[a] < x[b]; });

  RankResult out;
  out.ranks.assign(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) out.ranks[order[k]] = avg_rank;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) {
      out.tie_correction += t * t * t - t;
      ++out.tie_groups;
    }
    i = j + 1;
  }
  return out;
}

}  // namespace decompeval::stats
