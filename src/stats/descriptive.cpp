#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace decompeval::stats {

double mean(std::span<const double> x) {
  DE_EXPECTS(!x.empty());
  double s = 0.0;
  for (const double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double sample_variance(std::span<const double> x) {
  DE_EXPECTS(x.size() >= 2);
  const double m = mean(x);
  double ss = 0.0;
  for (const double v : x) ss += (v - m) * (v - m);
  return ss / static_cast<double>(x.size() - 1);
}

double sample_sd(std::span<const double> x) {
  return std::sqrt(sample_variance(x));
}

double median(std::vector<double> x) { return quantile(std::move(x), 0.5); }

double quantile(std::vector<double> x, double q) {
  DE_EXPECTS(!x.empty());
  DE_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(x.begin(), x.end());
  const double h = (static_cast<double>(x.size()) - 1.0) * q;
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(h));
  return x[lo] + (h - static_cast<double>(lo)) * (x[hi] - x[lo]);
}

FiveNumberSummary five_number_summary(std::vector<double> x) {
  DE_EXPECTS(!x.empty());
  std::sort(x.begin(), x.end());
  FiveNumberSummary s;
  s.min = x.front();
  s.max = x.back();
  s.q1 = quantile(x, 0.25);
  s.median = quantile(x, 0.5);
  s.q3 = quantile(x, 0.75);
  return s;
}

}  // namespace decompeval::stats
