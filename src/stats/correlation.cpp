#include "stats/correlation.h"

#include <cmath>

#include "statdist/distributions.h"
#include "stats/ranks.h"
#include "util/check.h"

namespace decompeval::stats {

namespace {

double pearson_coefficient(std::span<const double> x,
                           std::span<const double> y) {
  const std::size_t n = x.size();
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  DE_EXPECTS_MSG(sxx > 0.0 && syy > 0.0,
                 "correlation undefined for constant input");
  return sxy / std::sqrt(sxx * syy);
}

CorrelationResult t_approx_result(double r, std::size_t n) {
  CorrelationResult out;
  out.estimate = r;
  out.n = n;
  const double df = static_cast<double>(n) - 2.0;
  const double denom = 1.0 - r * r;
  if (denom <= 0.0) {
    out.statistic = r > 0 ? 1e10 : -1e10;
    out.p_value = 0.0;
    return out;
  }
  out.statistic = r * std::sqrt(df / denom);
  out.p_value = statdist::student_t_two_sided_p(out.statistic, df);
  return out;
}

}  // namespace

CorrelationResult pearson(std::span<const double> x,
                          std::span<const double> y) {
  DE_EXPECTS(x.size() == y.size());
  DE_EXPECTS_MSG(x.size() >= 3, "need at least 3 pairs");
  return t_approx_result(pearson_coefficient(x, y), x.size());
}

CorrelationResult spearman(std::span<const double> x,
                           std::span<const double> y) {
  DE_EXPECTS(x.size() == y.size());
  DE_EXPECTS_MSG(x.size() >= 3, "need at least 3 pairs");
  const RankResult rx = mid_ranks(x);
  const RankResult ry = mid_ranks(y);
  return t_approx_result(pearson_coefficient(rx.ranks, ry.ranks), x.size());
}

CorrelationResult kendall(std::span<const double> x,
                          std::span<const double> y) {
  DE_EXPECTS(x.size() == y.size());
  DE_EXPECTS_MSG(x.size() >= 3, "need at least 3 pairs");
  const std::size_t n = x.size();
  long long concordant = 0, discordant = 0;
  long long ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2;
  const double n1 = static_cast<double>(ties_x);
  const double n2 = static_cast<double>(ties_y);
  const double denom = std::sqrt((n0 - n1) * (n0 - n2));
  CorrelationResult out;
  out.n = n;
  DE_EXPECTS_MSG(denom > 0.0, "kendall undefined for constant input");
  out.estimate = (static_cast<double>(concordant - discordant)) / denom;
  // Normal approximation (un-tie-corrected variance; adequate for our n).
  const double nn = static_cast<double>(n);
  const double var = nn * (nn - 1.0) * (2.0 * nn + 5.0) / 18.0;
  out.statistic = static_cast<double>(concordant - discordant) / std::sqrt(var);
  out.p_value = 2.0 * (1.0 - statdist::normal_cdf(std::abs(out.statistic)));
  return out;
}

}  // namespace decompeval::stats
