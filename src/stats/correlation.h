// Correlation coefficients with p-values, matching R's cor.test behaviour
// closely enough for shape-level replication of Tables III/IV and RQ4.
#pragma once

#include <span>

namespace decompeval::stats {

struct CorrelationResult {
  double estimate = 0.0;  ///< rho / r / tau
  double statistic = 0.0; ///< test statistic (t for Pearson/Spearman approx)
  double p_value = 1.0;   ///< two-sided
  std::size_t n = 0;
};

/// Pearson product-moment correlation with t-distributed p-value (n >= 3,
/// both inputs non-constant).
CorrelationResult pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation: Pearson on mid-ranks, p-value from the
/// t approximation (the method R uses in the presence of ties).
CorrelationResult spearman(std::span<const double> x,
                           std::span<const double> y);

/// Kendall tau-b with normal-approximation p-value (tie-corrected).
CorrelationResult kendall(std::span<const double> x, std::span<const double> y);

}  // namespace decompeval::stats
