// Extension bench: Monte-Carlo power of the Table I design (§VI threats —
// "additional snippets would require additional participants to maintain
// statistical power"). Quantifies the detection probability of a real
// DIRTY effect under the paper's 40-participant / 4-snippet design and
// scaled-up designs.
#include "bench/bench_common.h"
#include "analysis/power.h"
#include "decompiler/generator.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

void BM_OnePowerReplicate(benchmark::State& state) {
  analysis::PowerConfig config;
  config.n_replicates = 1;
  config.true_effect_logit = 0.5;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = 1000 + (seed++);
    benchmark::DoNotOptimize(analysis::estimate_power(config));
  }
}
BENCHMARK(BM_OnePowerReplicate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    std::cout << "Monte-Carlo power of the Table I GLMM (alpha = 0.05, "
                 "30 replicates each):\n\n";
    std::cout << "A. Effect-size sweep, paper design (41 participants, 4 "
                 "snippets):\n";
    std::cout << "   effect (logit) | power | mean estimate +/- SE\n";
    for (const double effect : {0.0, 0.3, 0.6, 1.0}) {
      decompeval::analysis::PowerConfig config;
      config.true_effect_logit = effect;
      config.n_replicates = 30;
      const auto result = decompeval::analysis::estimate_power(config);
      std::cout << "   " << format_fixed(effect, 1) << "            | "
                << format_fixed(result.power, 2) << "  | "
                << format_fixed(result.mean_estimate, 2) << " +/- "
                << format_fixed(result.mean_std_error, 2) << '\n';
    }
    std::cout << "\nB. Snippet-pool sweep at effect 0.5 (synthetic pools):\n";
    std::cout << "   snippets | power | mean SE\n";
    for (const std::size_t n : {4u, 8u, 16u}) {
      decompeval::decompiler::GeneratorConfig gen;
      gen.seed = 555;
      decompeval::analysis::PowerConfig config;
      config.true_effect_logit = 0.5;
      config.n_replicates = 30;
      config.pool = decompeval::decompiler::generate_snippets(n, gen);
      const auto result = decompeval::analysis::estimate_power(config);
      std::cout << "   " << n << (n < 10 ? "        | " : "       | ")
                << format_fixed(result.power, 2) << "  | "
                << format_fixed(result.mean_std_error, 2) << '\n';
    }
    std::cout << "\nExpected shape: near-zero false-positive rate at effect "
                 "0, rising power with effect size and with pool size — the "
                 "4-snippet design is underpowered for modest effects, "
                 "supporting the paper's cautious interpretation of its "
                 "nulls.\n";
  });
}
