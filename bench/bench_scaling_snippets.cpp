// Extension bench: the threats-to-validity section suggests "randomizing a
// larger pool of snippets per participant". This bench scales the
// synthetic-pool study from the paper's 4 snippets to 64 and reports both
// the runtime and how the treatment-effect standard error shrinks with
// more questions.
#include "bench/bench_common.h"
#include "analysis/rq1_correctness.h"
#include "decompiler/generator.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

study::StudyData run_synthetic_study(std::size_t n_snippets) {
  decompiler::GeneratorConfig gen;
  gen.seed = 4242;
  study::StudyConfig config;
  config.seed = 68;
  return study::run_study(config, decompiler::generate_snippets(n_snippets, gen));
}

void BM_SyntheticStudy(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_synthetic_study(n));
  }
}
BENCHMARK(BM_SyntheticStudy)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SyntheticGlmm(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const auto data = run_synthetic_study(n);
  const auto md = analysis::build_model_data(data, /*timing_model=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixed::fit_logistic_glmm(md));
  }
}
BENCHMARK(BM_SyntheticGlmm)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    std::cout << "Snippet-pool scaling (synthetic pools, default cohort):\n";
    std::cout << "snippets | observations | Uses DIRTY estimate +/- SE\n";
    for (const std::size_t n : {4u, 8u, 16u, 32u}) {
      const auto data = run_synthetic_study(n);
      const auto result = decompeval::analysis::analyze_correctness(data);
      std::cout << n << (n < 10 ? "        | " : "       | ")
                << result.n_observations << "          | "
                << format_fixed(result.fit.coefficients[1].estimate, 3)
                << " +/- "
                << format_fixed(result.fit.coefficients[1].std_error, 3)
                << '\n';
    }
    std::cout << "\nExpected shape: the SE of the treatment coefficient "
                 "shrinks as the question pool grows — the statistical-power "
                 "argument behind the paper's future-work suggestion.\n";
  });
}
