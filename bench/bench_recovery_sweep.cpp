// Extension bench: the paper's thesis as an executable experiment.
//
// Sweeps the DIRTY-like model's recovery quality from poor to near-perfect
// and measures (a) the intrinsic metrics the field optimizes (exact-match
// accuracy, Jaccard) and (b) the extrinsic outcome the study measures (the
// DIRTY-vs-Hex-Rays correctness gap) on synthetic studies. With misleading
// annotations in the mix, intrinsic accuracy rises smoothly while the
// comprehension gain does not track it — the decorrelation of RQ5, now as
// a causal sweep rather than a correlation.
#include "bench/bench_common.h"
#include "decompiler/generator.h"
#include "text/similarity.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

struct SweepPoint {
  double exact_rate;
  double misleading_rate;
};

struct SweepOutcome {
  double exact_match = 0.0;      // intrinsic: names recovered verbatim
  double mean_jaccard = 0.0;     // intrinsic: subtoken overlap
  double correctness_gap = 0.0;  // extrinsic: P(correct|DIRTY) − P(|HexRays)
};

SweepOutcome run_point(const SweepPoint& point, std::uint64_t seed) {
  decompiler::GeneratorConfig generator;
  generator.seed = seed;
  generator.recovery_rates.exact = point.exact_rate;
  generator.recovery_rates.misleading = point.misleading_rate;
  const double rest =
      1.0 - point.exact_rate - point.misleading_rate - 0.05;
  generator.recovery_rates.synonym = std::max(0.0, rest * 0.6);
  generator.recovery_rates.related = std::max(0.0, rest * 0.4);

  const auto pool = decompiler::generate_snippets(12, generator);

  SweepOutcome outcome;
  std::size_t pairs = 0;
  for (const auto& snippet : pool) {
    for (const auto& pair : snippet.variable_alignment) {
      outcome.exact_match += pair.original == pair.recovered ? 1.0 : 0.0;
      outcome.mean_jaccard += text::name_jaccard(pair.original, pair.recovered);
      ++pairs;
    }
  }
  outcome.exact_match /= static_cast<double>(pairs);
  outcome.mean_jaccard /= static_cast<double>(pairs);

  study::StudyConfig config;
  config.seed = seed ^ 0xFACEULL;
  const auto data = study::run_study(config, pool);
  std::size_t dirty_correct = 0, dirty_total = 0, hex_correct = 0,
              hex_total = 0;
  for (const auto& r : data.responses) {
    if (!r.answered || !r.gradeable) continue;
    if (r.treatment == study::Treatment::kDirty) {
      ++dirty_total;
      if (r.correct) ++dirty_correct;
    } else {
      ++hex_total;
      if (r.correct) ++hex_correct;
    }
  }
  outcome.correctness_gap =
      static_cast<double>(dirty_correct) / std::max<std::size_t>(dirty_total, 1) -
      static_cast<double>(hex_correct) / std::max<std::size_t>(hex_total, 1);
  return outcome;
}

// A grid cell is one (sweep point, replicate seed) pair — an independent
// pure function, so the whole grid fans out over the thread pool and the
// per-point means are reduced in replicate order afterwards.
struct GridCell {
  SweepPoint point;
  std::uint64_t seed;
};

std::vector<SweepOutcome> run_grid(const std::vector<GridCell>& cells) {
  return decompeval::util::parallel_map(
      0, cells, [](const GridCell& cell, std::size_t) {
        return run_point(cell.point, cell.seed);
      });
}

void BM_SweepPoint(benchmark::State& state) {
  const SweepPoint point{0.5, 0.15};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_point(point, 42 + (seed++)));
  }
}
BENCHMARK(BM_SweepPoint)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    std::cout << "Recovery-quality sweep (12 synthetic snippets per point, "
                 "3 replicated studies each):\n\n";
    const auto print_sweep = [](const std::vector<double>& exacts,
                                double misleading, std::uint64_t seed_base) {
      std::vector<GridCell> cells;
      for (const double exact : exacts)
        for (std::uint64_t rep = 0; rep < 3; ++rep)
          cells.push_back({{exact, misleading}, seed_base + rep});
      const auto outcomes = run_grid(cells);
      std::cout << "   exact | exact-match | Jaccard | correctness gap\n";
      for (std::size_t p = 0; p < exacts.size(); ++p) {
        SweepOutcome mean;
        for (std::size_t rep = 0; rep < 3; ++rep) {
          const auto& o = outcomes[p * 3 + rep];
          mean.exact_match += o.exact_match / 3;
          mean.mean_jaccard += o.mean_jaccard / 3;
          mean.correctness_gap += o.correctness_gap / 3;
        }
        std::cout << "   " << format_fixed(exacts[p], 1) << "   | "
                  << format_fixed(mean.exact_match, 2) << "        | "
                  << format_fixed(mean.mean_jaccard, 2) << "    | "
                  << (mean.correctness_gap >= 0 ? "+" : "")
                  << format_fixed(mean.correctness_gap, 3) << '\n';
      }
    };
    std::cout << "A. Quality sweep with NO misleading annotations:\n";
    print_sweep({0.1, 0.3, 0.5, 0.7, 0.9}, 0.0, 100);
    std::cout << "\nB. Same sweep with 25% misleading annotations:\n";
    print_sweep({0.1, 0.3, 0.5, 0.7}, 0.25, 200);
    std::cout << "\nExpected shape: intrinsic metrics rise with the exact "
                 "rate in both sweeps; the extrinsic correctness gap rises "
                 "only in sweep A and is flattened or negated in sweep B — "
                 "intrinsic accuracy is not a comprehension proxy when the "
                 "error mode is misleading rather than missing.\n";
  });
}
