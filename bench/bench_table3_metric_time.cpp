// Table III: similarity metrics vs time-on-task — benchmark the metric
// computations and Spearman joins, regenerate the table.
#include "bench/bench_common.h"
#include "analysis/rq5_metrics.h"
#include "metrics/registry.h"
#include "report/render.h"

namespace {

using namespace decompeval;

void BM_SnippetMetricScores(benchmark::State& state) {
  const auto& snippet = bench::paper_pool()[state.range(0)];
  const auto inputs = snippet.metric_inputs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::compute_snippet_metrics(inputs, bench::cached_embeddings()));
  }
  state.SetLabel(snippet.id);
}
BENCHMARK(BM_SnippetMetricScores)->DenseRange(0, 3);

void BM_EmbeddingTraining(benchmark::State& state) {
  const std::size_t sentences = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        embed::EmbeddingModel::train_default(sentences, 42));
  }
}
BENCHMARK(BM_EmbeddingTraining)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_FullMetricCorrelationAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_metric_correlations(
        bench::cached_study(), bench::paper_pool(),
        bench::cached_embeddings()));
  }
}
BENCHMARK(BM_FullMetricCorrelationAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto result = decompeval::analysis::analyze_metric_correlations(
        decompeval::bench::cached_study(), decompeval::bench::paper_pool(),
        decompeval::bench::cached_embeddings());
    std::cout << decompeval::report::render_table3(result);
    std::cout << "\nPaper reference (rho vs time): BLEU +0.257*, codeBLEU "
                 "+0.257*, Jaccard +0.519*, BERTScore +0.006 (n.s.), VarCLR "
                 "+0.257*, Human(vars) +0.261*, Human(types) +0.107*.\n";
  });
}
