// Figure 6: BAPL completion times with Welch's t-test.
#include "bench/bench_common.h"
#include "analysis/figures.h"
#include "report/render.h"
#include "stats/tests.h"
#include "util/rng.h"

namespace {

using namespace decompeval;

void BM_SnippetTimingAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_snippet_timing(
        bench::cached_study(), bench::paper_pool(), "BAPL"));
  }
}
BENCHMARK(BM_SnippetTimingAnalysis);

void BM_WelchTTest(benchmark::State& state) {
  const std::size_t n = state.range(0);
  util::Rng rng(2);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.lognormal(5.5, 0.5);
    y[i] = rng.lognormal(5.45, 0.6);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::welch_t_test(x, y));
  }
}
BENCHMARK(BM_WelchTTest)->Arg(32)->Arg(256)->Arg(2048);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto timing = decompeval::analysis::analyze_snippet_timing(
        decompeval::bench::cached_study(), decompeval::bench::paper_pool(),
        "BAPL");
    std::cout << decompeval::report::render_figure6(timing);
    std::cout << "\nPaper reference: Hex-Rays mean 256.3 s (sd 145.1) vs "
                 "DIRTY 242.3 s (sd 202.3), Welch p = 0.7204 — no "
                 "significant difference despite better correctness.\n";
  });
}
