// Table I: GLMER correctness model — benchmark the logistic GLMM fit and
// regenerate the paper's table.
#include "bench/bench_common.h"
#include "analysis/rq1_correctness.h"
#include "report/render.h"

namespace {

using namespace decompeval;

void BM_StudySimulation(benchmark::State& state) {
  for (auto _ : state) {
    study::StudyConfig config;
    config.seed = 68;
    benchmark::DoNotOptimize(study::run_study(config));
  }
}
BENCHMARK(BM_StudySimulation);

void BM_GlmmFit(benchmark::State& state) {
  const auto& data = bench::cached_study();
  const auto md = analysis::build_model_data(data, /*timing_model=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixed::fit_logistic_glmm(md));
  }
}
BENCHMARK(BM_GlmmFit)->Unit(benchmark::kMillisecond);

void BM_Table1EndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::analyze_correctness(bench::cached_study()));
  }
}
BENCHMARK(BM_Table1EndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto result =
        decompeval::analysis::analyze_correctness(
            decompeval::bench::cached_study());
    std::cout << decompeval::report::render_table1(result);
    std::cout << "\nPaper reference: Uses DIRTY -0.074 +/- 0.227 (n.s.), "
                 "sigma(Users)=0.85, sigma(Questions)=1.14, R2m=0.041, "
                 "R2c=0.405, n=273, 36 users, 8 questions.\n";
  });
}
