// Parallel-scaling bench: wall-clock speedup of the task-parallel
// execution layer on the three hottest paths (per-seed robustness sweep,
// power replicates, embedding training) at 1/2/4/hardware threads, with a
// bit-identity check between the serial and parallel results. Writes
// BENCH_parallel.json to the working directory so the perf trajectory is
// tracked across PRs. On a single-core host the speedups hover around 1x
// (there is no second core to run on); hardware_concurrency is recorded in
// the JSON so readings are interpretable.
#include <sys/utsname.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include <filesystem>
#include <memory>
#include <numeric>
#include <vector>

#include "bench/bench_common.h"
#include "analysis/power.h"
#include "analysis/robustness.h"
#include "analysis/rq1_correctness.h"
#include "cluster/backend.h"
#include "cluster/dispatcher.h"
#include "core/replication.h"
#include "embed/corpus.h"
#include "metrics/bertscore.h"
#include "metrics/codebleu.h"
#include "mixed/glmm.h"
#include "service/server.h"
#include "service/service.h"
#include "text/bleu.h"
#include "text/similarity.h"
#include "util/rng.h"
#include "study/engine.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

bool identical(const analysis::RobustnessSummary& a,
               const analysis::RobustnessSummary& b) {
  if (a.n_seeds != b.n_seeds || a.criteria.size() != b.criteria.size())
    return false;
  for (std::size_t i = 0; i < a.criteria.size(); ++i) {
    if (a.criteria[i].name != b.criteria[i].name ||
        a.criteria[i].held != b.criteria[i].held ||
        a.criteria[i].total != b.criteria[i].total)
      return false;
  }
  return true;
}

std::vector<std::size_t> thread_ladder() {
  std::vector<std::size_t> ladder = {1, 2, 4};
  const std::size_t hw = util::default_thread_count();
  if (hw > 4) ladder.push_back(hw);
  return ladder;
}

using bench::host_fingerprint;

// Pulls a JSON string or number field out of the previous run's file with
// plain string search — enough for the flat file this bench writes.
std::string previous_field(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end;
  if (text[begin] == '"') {
    ++begin;
    end = text.find('"', begin);
  } else {
    end = text.find_first_of(",\n}", begin);
  }
  return end == std::string::npos ? "" : text.substr(begin, end - begin);
}

// Compares this run's host against the BENCH_parallel.json already on
// disk (the previous PR's reading) and warns when the speedup columns are
// about to be compared across different machines or core counts.
void warn_if_host_changed(std::size_t hw) {
  std::ifstream previous("BENCH_parallel.json");
  if (!previous) return;
  std::stringstream buffer;
  buffer << previous.rdbuf();
  const std::string text = buffer.str();
  const std::string prev_hw = previous_field(text, "hardware_concurrency");
  const std::string prev_host = previous_field(text, "host_fingerprint");
  if (!prev_hw.empty() && prev_hw != std::to_string(hw)) {
    std::cout << "\nWARNING: previous BENCH_parallel.json was recorded with "
              << "hardware_concurrency = " << prev_hw << ", this host has "
              << hw << ".\n         Speedup columns are NOT comparable "
              << "across core counts — on a 1-core container every\n"
              << "         speedup collapses to ~1x regardless of the "
              << "code's actual scaling.\n";
  } else if (!prev_host.empty() && prev_host != host_fingerprint()) {
    std::cout << "\nWARNING: previous BENCH_parallel.json came from a "
              << "different host (" << prev_host << ");\n         absolute "
              << "milliseconds are not comparable across machines.\n";
  }
}

// One cluster throughput reading: `n_backends` socket-served backends
// (each with a fresh disk cache and its rendered-line fast path wired
// into the server) behind a dispatcher with its response cache enabled,
// driven with a 12-seed run_study sweep.
//
//   cold          — every request computed end to end (handle_line,
//                   populating every cache on the way out)
//   warm          — served from the dispatcher's rendered-line cache;
//                   many passes, per-request latencies recorded for the
//                   p50/p95/p99 columns
//   warm forwarded — dispatcher cache bypassed (handle()), so each
//                   request crosses the socket and is answered by the
//                   backend's rendered-line fast path on the connection
//                   thread
//
// The cold and warm response lines must match byte for byte.
struct ClusterReading {
  double cold_rps = 0.0;
  double warm_rps = 0.0;
  double warm_forwarded_rps = 0.0;
  double warm_p50_us = 0.0;
  double warm_p95_us = 0.0;
  double warm_p99_us = 0.0;
  bool bit_identical = true;
};

// Socket-served backends behind a dispatcher, spun up and torn down per
// reading. Shared by the run_study throughput ladder and the annotate
// latency ladder.
struct BenchCluster {
  std::vector<std::unique_ptr<cluster::ClusterBackend>> backends;
  std::vector<std::unique_ptr<service::ReplicationServer>> servers;
  std::vector<std::string> dirs;
  std::unique_ptr<cluster::Dispatcher> dispatcher;

  BenchCluster(const std::string& prefix, std::size_t n_backends,
               std::size_t replication_factor, double hedge_delay_ms = 0.0,
               std::size_t response_cache_capacity = 256) {
    cluster::DispatcherOptions dispatch;
    dispatch.response_cache_capacity = response_cache_capacity;
    dispatch.replication_factor = replication_factor;
    dispatch.hedge_delay_ms = hedge_delay_ms;
    for (std::size_t i = 0; i < n_backends; ++i) {
      const std::string tag = prefix + "-" + std::to_string(n_backends) +
                              "-r" + std::to_string(replication_factor) +
                              "-" + std::to_string(i) + "-" +
                              std::to_string(::getpid());
      dirs.push_back("/tmp/decompeval-bench-cache-" + tag);
      std::filesystem::remove_all(dirs.back());
      cluster::ClusterBackendOptions backend_options;
      backend_options.cache.directory = dirs.back();
      backend_options.cache.version = core::version();
      backends.push_back(
          std::make_unique<cluster::ClusterBackend>(backend_options));
      service::ServerOptions server_options;
      server_options.socket_path = "/tmp/decompeval-bench-" + tag + ".sock";
      server_options.workers = 2;
      server_options.max_queue = 32;
      server_options.handler = backends.back()->handler();
      server_options.fast_path = backends.back()->fast_path();
      servers.push_back(
          std::make_unique<service::ReplicationServer>(server_options));
      servers.back()->start();
      cluster::BackendEndpoint endpoint;
      endpoint.id = "bench-backend-" + std::to_string(i);
      endpoint.socket_path = server_options.socket_path;
      dispatch.backends.push_back(endpoint);
    }
    dispatcher = std::make_unique<cluster::Dispatcher>(dispatch);
    dispatcher->start();
  }

  ~BenchCluster() {
    dispatcher->stop();
    for (auto& server : servers) server->stop();
    for (const std::string& dir : dirs) std::filesystem::remove_all(dir);
  }
};

ClusterReading bench_cluster(std::size_t n_backends,
                             std::size_t replication_factor = 1) {
  using service::Json;
  constexpr std::uint64_t kSeeds = 12;
  constexpr std::size_t kWarmPasses = 200;

  BenchCluster bench("study", n_backends, replication_factor);
  cluster::Dispatcher& dispatcher = *bench.dispatcher;

  std::vector<Json> requests;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Json req = Json::object();
    req.set("op", Json::string("run_study"));
    req.set("seed", Json::number(static_cast<double>(seed)));
    requests.push_back(std::move(req));
  }
  const auto line_sweep = [&](std::vector<std::string>* lines) {
    std::string out;
    for (const Json& req : requests) {
      out.clear();
      dispatcher.handle_line(req, nullptr, out);
      if (lines != nullptr) lines->push_back(out);
    }
  };

  ClusterReading reading;
  std::vector<std::string> cold, warm;
  const double cold_ms = time_ms([&] { line_sweep(&cold); });
  reading.cold_rps = kSeeds / (cold_ms / 1000.0);

  // Warm passes: the first is bit-identity checked against the cold
  // responses, the rest accumulate per-request latency samples.
  line_sweep(&warm);
  reading.bit_identical = cold == warm;
  std::vector<double> latencies_us;
  latencies_us.reserve(kSeeds * kWarmPasses);
  std::string out;
  const auto warm_start = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < kWarmPasses; ++pass) {
    for (const Json& req : requests) {
      out.clear();
      const auto t0 = std::chrono::steady_clock::now();
      dispatcher.handle_line(req, nullptr, out);
      const auto t1 = std::chrono::steady_clock::now();
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  const auto warm_stop = std::chrono::steady_clock::now();
  const double warm_ms =
      std::chrono::duration<double, std::milli>(warm_stop - warm_start)
          .count();
  reading.warm_rps = (kSeeds * kWarmPasses) / (warm_ms / 1000.0);
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto percentile = [&](double p) {
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[rank];
  };
  reading.warm_p50_us = percentile(0.50);
  reading.warm_p95_us = percentile(0.95);
  reading.warm_p99_us = percentile(0.99);

  // Forwarded warm pass: handle() skips the dispatcher's line cache, so
  // every request crosses a socket and exercises the backend fast path.
  constexpr std::size_t kForwardPasses = 20;
  const double fwd_ms = time_ms([&] {
    for (std::size_t pass = 0; pass < kForwardPasses; ++pass)
      for (const Json& req : requests)
        benchmark::DoNotOptimize(dispatcher.handle(req, nullptr));
  });
  reading.warm_forwarded_rps = (kSeeds * kForwardPasses) / (fwd_ms / 1000.0);

  return reading;
}

// Annotate small-request ladder: the interactive RE-tool workload. Cold
// documents have never been seen by any annotation engine; warm requests
// are single-function edits of a fixed session anchor, carrying it as
// `baseline` so the dispatcher routes every edit to the backend whose
// engine already holds the anchor's slices. The incremental responses
// must be byte-identical to a from-scratch core annotating the same text.
struct AnnotateReading {
  double cold_rps = 0.0;
  double warm_rps = 0.0;
  double cold_p50_us = 0.0;
  double cold_p95_us = 0.0;
  double cold_p99_us = 0.0;
  double warm_p50_us = 0.0;
  double warm_p95_us = 0.0;
  double warm_p99_us = 0.0;
  bool bit_identical = true;
};

// One top-level function; `version` perturbs a constant so edits
// regenerate exactly one function's text.
std::string annotate_function(std::size_t index, std::uint64_t version) {
  return "int fn_" + std::to_string(index) +
         "(int a1, int count) {\n  int v5 = 0;\n"
         "  for (int i = 0; i < count; i = i + 1) { v5 = v5 + a1; }\n"
         "  return v5 + " + std::to_string(version) + ";\n}\n\n";
}

std::string annotate_document(const std::vector<std::uint64_t>& versions) {
  std::string source;
  for (std::size_t i = 0; i < versions.size(); ++i)
    source += annotate_function(i, versions[i]);
  return source;
}

AnnotateReading bench_annotate(std::size_t n_backends) {
  using service::Json;
  constexpr std::size_t kFunctions = 8;
  constexpr std::size_t kColdDocs = 48;
  constexpr std::size_t kEdits = 96;

  BenchCluster bench("annotate", n_backends, /*replication_factor=*/1);
  cluster::Dispatcher& dispatcher = *bench.dispatcher;

  const auto request = [](const std::string& source) {
    Json req = Json::object();
    req.set("op", Json::string("annotate"));
    req.set("source", Json::string(source));
    req.set("threads", Json::number(1));
    return req;
  };
  const auto percentile = [](std::vector<double>& sorted, double p) {
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
  };

  AnnotateReading reading;
  std::string out;

  // Cold: every document is new to every engine (unique constants), and
  // documents spread across the ring like independent sessions would.
  std::vector<double> cold_us;
  cold_us.reserve(kColdDocs);
  for (std::size_t doc = 0; doc < kColdDocs; ++doc) {
    std::vector<std::uint64_t> versions(kFunctions);
    for (std::size_t i = 0; i < kFunctions; ++i)
      versions[i] = 1'000'000 + doc * 100 + i;
    const Json req = request(annotate_document(versions));
    out.clear();
    const auto t0 = std::chrono::steady_clock::now();
    dispatcher.handle_line(req, nullptr, out);
    const auto t1 = std::chrono::steady_clock::now();
    cold_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  // Throughput is derived from the per-request samples so document
  // generation and identity bookkeeping never dilute it.
  reading.cold_rps =
      kColdDocs /
      (std::accumulate(cold_us.begin(), cold_us.end(), 0.0) / 1e6);
  std::sort(cold_us.begin(), cold_us.end());
  reading.cold_p50_us = percentile(cold_us, 0.50);
  reading.cold_p95_us = percentile(cold_us, 0.95);
  reading.cold_p99_us = percentile(cold_us, 0.99);

  // Warm: annotate the session anchor once, then stream single-function
  // edits against it. Every edited source is new bytes — no response
  // cache can answer it — so the latency measured is the incremental
  // engine path: one slice recomputed, the rest served from its cache.
  const std::vector<std::uint64_t> anchor_versions(kFunctions, 1);
  const std::string anchor = annotate_document(anchor_versions);
  out.clear();
  dispatcher.handle_line(request(anchor), nullptr, out);

  std::vector<double> warm_us;
  warm_us.reserve(kEdits);
  std::vector<std::string> edited_sources;
  std::vector<std::string> incremental_dumps;
  for (std::size_t edit = 0; edit < kEdits; ++edit) {
    std::vector<std::uint64_t> versions = anchor_versions;
    versions[edit % kFunctions] = 2 + edit;
    edited_sources.push_back(annotate_document(versions));
    Json req = request(edited_sources.back());
    req.set("baseline", Json::string(anchor));
    out.clear();
    const auto t0 = std::chrono::steady_clock::now();
    dispatcher.handle_line(req, nullptr, out);
    const auto t1 = std::chrono::steady_clock::now();
    warm_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    incremental_dumps.push_back(dispatcher.handle(req, nullptr).dump());
  }
  reading.warm_rps =
      kEdits /
      (std::accumulate(warm_us.begin(), warm_us.end(), 0.0) / 1e6);
  std::sort(warm_us.begin(), warm_us.end());
  reading.warm_p50_us = percentile(warm_us, 0.50);
  reading.warm_p95_us = percentile(warm_us, 0.95);
  reading.warm_p99_us = percentile(warm_us, 0.99);

  // Bit-identity: every incremental response equals a from-scratch core
  // annotating the same text (no baseline, no warm slices).
  for (std::size_t edit = 0; edit < kEdits; ++edit) {
    service::ServiceCore scratch;
    reading.bit_identical =
        reading.bit_identical &&
        scratch.handle(request(edited_sources[edit])).dump() ==
            incremental_dumps[edit];
  }

  return reading;
}

// Fixed-offered-load ladder: four open-loop clients each fire a warm
// run_study request every 10 ms (400 req/s offered in total, independent
// of how fast responses come back), for one second, against 1/2/4
// socket-served backends — once with hedging off and once with a 5 ms
// hedge delay armed. The dispatcher's own response cache is disabled so
// every request crosses a socket; the comparison isolates what arming
// hedged reads costs on an all-healthy cluster (it should be ~nothing:
// warm forwards answer far inside the hedge delay, so hedges rarely
// fire) while the chaos suite proves what hedging buys when a peer
// stalls.
struct OfferedLoadReading {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double achieved_rps = 0.0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
};

OfferedLoadReading bench_offered_load(std::size_t n_backends, bool hedging) {
  using service::Json;
  constexpr std::uint64_t kSeeds = 12;
  constexpr std::size_t kClients = 4;
  constexpr auto kSendInterval = std::chrono::milliseconds(10);
  constexpr auto kWindow = std::chrono::milliseconds(1000);

  BenchCluster bench("offered", n_backends, /*replication_factor=*/1,
                     /*hedge_delay_ms=*/hedging ? 5.0 : 0.0,
                     /*response_cache_capacity=*/0);
  cluster::Dispatcher& dispatcher = *bench.dispatcher;

  std::vector<Json> requests;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Json req = Json::object();
    req.set("op", Json::string("run_study"));
    req.set("seed", Json::number(static_cast<double>(seed)));
    requests.push_back(std::move(req));
  }
  // Pre-warm every backend cache so the window measures serving, not
  // first-time computation.
  for (const Json& req : requests)
    benchmark::DoNotOptimize(dispatcher.handle(req, nullptr));

  std::vector<std::vector<double>> per_client(kClients);
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto next_send = start;
      std::size_t i = c;  // stagger which seed each client cycles from
      while (true) {
        next_send += kSendInterval;
        if (next_send - start > kWindow) break;
        std::this_thread::sleep_until(next_send);
        const Json& req = requests[i++ % requests.size()];
        const auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(dispatcher.handle(req, nullptr));
        per_client[c].push_back(std::chrono::duration<double, std::micro>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count());
      }
    });
  }
  for (auto& t : clients) t.join();
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();

  std::vector<double> latencies;
  for (const auto& lane : per_client)
    latencies.insert(latencies.end(), lane.begin(), lane.end());
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&](double p) {
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[rank];
  };
  OfferedLoadReading reading;
  reading.p50_us = percentile(0.50);
  reading.p95_us = percentile(0.95);
  reading.p99_us = percentile(0.99);
  reading.achieved_rps = static_cast<double>(latencies.size()) / elapsed_s;
  const cluster::DispatcherStats stats = dispatcher.stats();
  reading.hedges = stats.hedges;
  reading.hedge_wins = stats.hedge_wins;
  return reading;
}

// Sustained-absorb streaming ladder: one stream served through the
// dispatcher at 1/2/4 socket-served backends, absorbing arrivals in
// batches with a stream_dashboard probe between batches — the live
// "operator watching the windowed RQs while the study runs" workload.
// The stream routes by its id to a single backend, so the ladder
// measures serving-path interference (more server threads on the same
// host), not sharding; the headline column is the bit-identity of the
// state digest across backend counts and refit cadences on/off.
struct StreamReading {
  double absorb_rps = 0.0;  ///< arrivals/s through the dispatcher
  double dash_p50_us = 0.0;
  double dash_p95_us = 0.0;
  double dash_p99_us = 0.0;
  std::string digest;
};

StreamReading bench_stream(std::size_t n_backends, bool refits) {
  using service::Json;
  constexpr std::uint64_t kArrivals = 4000;
  constexpr std::uint64_t kBatch = 200;

  BenchCluster bench(refits ? "stream-refit" : "stream", n_backends,
                     /*replication_factor=*/1, /*hedge_delay_ms=*/0.0,
                     /*response_cache_capacity=*/0);
  cluster::Dispatcher& dispatcher = *bench.dispatcher;

  Json open = Json::object();
  open.set("op", Json::string("stream_open"));
  open.set("stream", Json::string("bench"));
  open.set("population", Json::number(32));
  open.set("window_events", Json::number(512));
  if (refits) {
    open.set("refit_every", Json::number(1000));
    open.set("fit_starts", Json::number(2));
  }
  benchmark::DoNotOptimize(dispatcher.handle(open, nullptr));

  Json dash = Json::object();
  dash.set("op", Json::string("stream_dashboard"));
  dash.set("stream", Json::string("bench"));

  std::vector<double> dash_us;
  double absorb_ms = 0.0;
  for (std::uint64_t upto = kBatch; upto <= kArrivals; upto += kBatch) {
    Json absorb = Json::object();
    absorb.set("op", Json::string("stream_absorb"));
    absorb.set("stream", Json::string("bench"));
    absorb.set("upto", Json::number(static_cast<double>(upto)));
    absorb_ms += time_ms(
        [&] { benchmark::DoNotOptimize(dispatcher.handle(absorb, nullptr)); });
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(dispatcher.handle(dash, nullptr));
    dash_us.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }

  StreamReading reading;
  reading.absorb_rps =
      static_cast<double>(kArrivals) / (absorb_ms / 1000.0);
  std::sort(dash_us.begin(), dash_us.end());
  const auto percentile = [&](double p) {
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(dash_us.size() - 1));
    return dash_us[rank];
  };
  reading.dash_p50_us = percentile(0.50);
  reading.dash_p95_us = percentile(0.95);
  reading.dash_p99_us = percentile(0.99);

  Json stats = Json::object();
  stats.set("op", Json::string("stream_stats"));
  stats.set("stream", Json::string("bench"));
  reading.digest = dispatcher.handle(stats, nullptr).get_string("digest", "");
  return reading;
}

// Cold metric battery: the four metric kernels over a fixed randomized
// workload, timed with the rewritten kernels and again with the retained
// reference implementations, results compared for exact equality. The
// ">= 2x battery" acceptance number comes from here.
struct BatteryReading {
  double fast_ms = 0.0;
  double reference_ms = 0.0;
  bool bit_identical = true;
};

BatteryReading bench_metric_battery() {
  util::Rng rng(20260808);
  const std::string_view alphabet = "abcdefghijklmnopqrstuvwxyz();{}= ";
  std::vector<std::pair<std::string, std::string>> string_pairs;
  for (int i = 0; i < 60; ++i) {
    const auto make = [&](std::size_t len) {
      std::string s;
      for (std::size_t k = 0; k < len; ++k)
        s.push_back(alphabet[rng.uniform_index(alphabet.size())]);
      return s;
    };
    string_pairs.emplace_back(make(40 + rng.uniform_index(400)),
                              make(40 + rng.uniform_index(400)));
  }
  const std::vector<std::string> vocab = {"int",    "x",  "=", "0",   ";",
                                          "if",     "(",  ")", "ptr", "len",
                                          "return", "buf"};
  std::vector<std::pair<std::vector<std::string>, std::vector<std::string>>>
      token_pairs;
  for (int i = 0; i < 60; ++i) {
    const auto make = [&](std::size_t len) {
      std::vector<std::string> t;
      for (std::size_t k = 0; k < len; ++k)
        t.push_back(vocab[rng.uniform_index(vocab.size())]);
      return t;
    };
    token_pairs.emplace_back(make(5 + rng.uniform_index(40)),
                             make(5 + rng.uniform_index(40)));
  }
  const auto model = embed::EmbeddingModel::train(
      embed::generate_corpus(500, 42), embed::EmbeddingOptions{});

  const auto run_battery = [&](bool reference, std::vector<double>* values) {
    for (const auto& [a, b] : string_pairs)
      values->push_back(static_cast<double>(
          reference ? text::levenshtein_reference(a, b)
                    : text::levenshtein(a, b)));
    for (const auto& [cand, ref] : token_pairs) {
      values->push_back(reference ? text::bleu_reference(cand, ref).bleu
                                  : text::bleu(cand, ref).bleu);
      values->push_back(
          reference ? metrics::weighted_unigram_match_reference(cand, ref)
                    : metrics::weighted_unigram_match(cand, ref));
      const auto bs = reference
                          ? metrics::bert_score_reference(cand, ref, model)
                          : metrics::bert_score(cand, ref, model);
      values->push_back(bs.f1);
    }
  };
  BatteryReading reading;
  std::vector<double> fast_values, reference_values;
  reading.fast_ms = time_ms([&] { run_battery(false, &fast_values); });
  reading.reference_ms =
      time_ms([&] { run_battery(true, &reference_values); });
  reading.bit_identical = fast_values == reference_values;
  return reading;
}

void BM_ThreadPoolBatchOverhead(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(64, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolBatchOverhead)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    const std::size_t hw = util::default_thread_count();
    const auto ladder = thread_ladder();

    std::cout << "Task-parallel scaling (hardware_concurrency = " << hw
              << "):\n\n";

    // 1. Robustness: 10-seed sweep (the acceptance workload).
    analysis::RobustnessConfig robustness;
    robustness.n_seeds = 10;
    std::vector<double> robustness_ms;
    analysis::RobustnessSummary serial_summary;
    bool robustness_identical = true;
    for (const std::size_t threads : ladder) {
      robustness.threads = threads;
      analysis::RobustnessSummary summary;
      robustness_ms.push_back(
          time_ms([&] { summary = analysis::analyze_robustness(robustness); }));
      if (threads == 1)
        serial_summary = summary;
      else
        robustness_identical =
            robustness_identical && identical(serial_summary, summary);
    }

    // 2. Power: 12 GLMM replicates.
    analysis::PowerConfig power;
    power.n_replicates = 12;
    std::vector<double> power_ms;
    for (const std::size_t threads : ladder) {
      power.threads = threads;
      power_ms.push_back(
          time_ms([&] { benchmark::DoNotOptimize(estimate_power(power)); }));
    }

    // 3. Embedding training: 8000-sentence corpus.
    const auto corpus = embed::generate_corpus(8000, 42);
    std::vector<double> embed_ms;
    for (const std::size_t threads : ladder) {
      embed::EmbeddingOptions options;
      options.threads = threads;
      embed_ms.push_back(time_ms([&] {
        benchmark::DoNotOptimize(embed::EmbeddingModel::train(corpus, options));
      }));
    }

    // 4. Multi-start GLMM: the default 8-start Laplace fit, with a
    //    bit-identity check of the winning deviance across thread counts.
    const auto model_data = analysis::build_model_data(
        bench::cached_study(), /*timing_model=*/false);
    std::vector<double> glmm_ms;
    double glmm_serial_deviance = 0.0;
    bool glmm_identical = true;
    for (const std::size_t threads : ladder) {
      mixed::FitOptions options;
      options.threads = threads;
      mixed::GlmmFit fit;
      glmm_ms.push_back(
          time_ms([&] { fit = mixed::fit_logistic_glmm(model_data, options); }));
      if (threads == 1)
        glmm_serial_deviance = fit.deviance;
      else
        glmm_identical =
            glmm_identical && fit.deviance == glmm_serial_deviance;
    }

    // 5. Sharded study simulation, bit-identity checked on the responses.
    std::vector<double> study_ms;
    study::StudyData serial_study;
    bool study_identical = true;
    for (const std::size_t threads : ladder) {
      study::StudyConfig config;
      config.threads = threads;
      study::StudyData data;
      study_ms.push_back(time_ms([&] { data = study::run_study(config); }));
      if (threads == 1) {
        serial_study = std::move(data);
        continue;
      }
      bool same = data.responses.size() == serial_study.responses.size();
      for (std::size_t i = 0; same && i < data.responses.size(); ++i)
        same = data.responses[i].seconds == serial_study.responses[i].seconds &&
               data.responses[i].correct == serial_study.responses[i].correct;
      study_identical = study_identical && same;
    }

    // 6. Cluster throughput: dispatcher + socket-served backends at
    //    1/2/4 shards, cold (computing) vs warm (cache-served) req/sec.
    //
    //    Ladder caveat: on a 1-core host, adding backends adds server
    //    threads without adding compute, so the *forwarded* warm column
    //    degrades as backends contend for the single core — that is host
    //    topology, not a cluster regression. The dispatcher-cached warm
    //    column is backend-count independent by construction (no
    //    forwarding). Interpret scaling columns only when
    //    hardware_concurrency >= the backend count.
    const std::vector<std::size_t> backend_ladder = {1, 2, 4};
    std::vector<ClusterReading> cluster_readings;
    for (const std::size_t n : backend_ladder)
      cluster_readings.push_back(bench_cluster(n));

    // 6b. Replication ladder: the same 3-backend cluster at R=1 vs R=2.
    //     R=2 pays a synchronous, hedge-free cache_install on the second
    //     ring replica for every computed (cold) and forwarded (warm)
    //     "ok" response — this measures exactly that overhead, which is
    //     the price of surviving a kill -9 with zero lost requests.
    const std::vector<std::size_t> replication_ladder = {1, 2};
    std::vector<ClusterReading> replication_readings;
    for (const std::size_t r : replication_ladder)
      replication_readings.push_back(bench_cluster(3, r));

    // 6c. Annotate small-request ladder: cold documents vs incremental
    //     edits of a baseline-routed session anchor, per-request
    //     p50/p95/p99 through the dispatcher at 1/2/4 backends.
    std::vector<AnnotateReading> annotate_readings;
    for (const std::size_t n : backend_ladder)
      annotate_readings.push_back(bench_annotate(n));

    // 6d. Fixed-offered-load ladder (400 req/s, warm forwards) at 1/2/4
    //     backends, hedging off vs armed — the cost of carrying hedged
    //     reads on a healthy cluster.
    std::vector<OfferedLoadReading> unhedged_readings, hedged_readings;
    for (const std::size_t n : backend_ladder) {
      unhedged_readings.push_back(bench_offered_load(n, /*hedging=*/false));
      hedged_readings.push_back(bench_offered_load(n, /*hedging=*/true));
    }

    // 6e. Sustained-absorb streaming ladder: 4000 arrivals absorbed in
    //     batches with a dashboard probe between batches, refit cadence
    //     off vs every-1000. The digest column is the acceptance check:
    //     bit-identical across backend counts and unchanged by refits.
    std::vector<StreamReading> stream_readings, stream_refit_readings;
    for (const std::size_t n : backend_ladder) {
      stream_readings.push_back(bench_stream(n, /*refits=*/false));
      stream_refit_readings.push_back(bench_stream(n, /*refits=*/true));
    }

    // 7. Cold metric battery, rewritten kernels vs retained references.
    const BatteryReading battery = bench_metric_battery();

    const auto print_row = [&](const char* label,
                               const std::vector<double>& ms) {
      std::cout << "  " << label << ":";
      for (std::size_t i = 0; i < ladder.size(); ++i)
        std::cout << "  t" << ladder[i] << "=" << format_fixed(ms[i], 0)
                  << "ms";
      std::cout << "  (speedup t" << ladder.back() << "/t1 = "
                << format_fixed(ms[0] / ms.back(), 2) << "x)\n";
    };
    print_row("robustness 10 seeds ", robustness_ms);
    print_row("power 12 replicates ", power_ms);
    print_row("embedding 8k corpus ", embed_ms);
    print_row("glmm 8-start fit    ", glmm_ms);
    print_row("study simulation    ", study_ms);
    std::cout << "  robustness summary bit-identical across thread counts: "
              << (robustness_identical ? "yes" : "NO — BUG") << "\n";
    std::cout << "  glmm deviance bit-identical across thread counts:      "
              << (glmm_identical ? "yes" : "NO — BUG") << "\n";
    std::cout << "  study responses bit-identical across thread counts:    "
              << (study_identical ? "yes" : "NO — BUG") << "\n";

    bool cluster_identical = true;
    std::cout << "\nCluster throughput (12-seed run_study sweep through the "
                 "dispatcher):\n";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i) {
      const ClusterReading& r = cluster_readings[i];
      cluster_identical = cluster_identical && r.bit_identical;
      std::cout << "  backends=" << backend_ladder[i] << ":  cold="
                << format_fixed(r.cold_rps, 1) << " req/s  warm="
                << format_fixed(r.warm_rps, 1) << " req/s  warm-forwarded="
                << format_fixed(r.warm_forwarded_rps, 1)
                << " req/s  p50/p95/p99=" << format_fixed(r.warm_p50_us, 1)
                << "/" << format_fixed(r.warm_p95_us, 1) << "/"
                << format_fixed(r.warm_p99_us, 1) << " us\n";
    }
    std::cout << "  cold and warm responses bit-identical:                 "
              << (cluster_identical ? "yes" : "NO — BUG") << "\n";

    bool replication_identical = true;
    std::cout << "\nReplication overhead (3 backends, R=1 vs R=2):\n";
    for (std::size_t i = 0; i < replication_ladder.size(); ++i) {
      const ClusterReading& r = replication_readings[i];
      replication_identical = replication_identical && r.bit_identical;
      std::cout << "  R=" << replication_ladder[i] << ":  cold="
                << format_fixed(r.cold_rps, 1) << " req/s  warm="
                << format_fixed(r.warm_rps, 1) << " req/s  warm-forwarded="
                << format_fixed(r.warm_forwarded_rps, 1)
                << " req/s  p50/p95/p99=" << format_fixed(r.warm_p50_us, 1)
                << "/" << format_fixed(r.warm_p95_us, 1) << "/"
                << format_fixed(r.warm_p99_us, 1) << " us\n";
    }
    std::cout << "  replicated responses bit-identical:                    "
              << (replication_identical ? "yes" : "NO — BUG") << "\n";

    bool annotate_identical = true;
    std::cout << "\nAnnotate latency (8-function documents through the "
                 "dispatcher):\n";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i) {
      const AnnotateReading& r = annotate_readings[i];
      annotate_identical = annotate_identical && r.bit_identical;
      std::cout << "  backends=" << backend_ladder[i]
                << ":  cold p50/p95/p99=" << format_fixed(r.cold_p50_us, 1)
                << "/" << format_fixed(r.cold_p95_us, 1) << "/"
                << format_fixed(r.cold_p99_us, 1) << " us ("
                << format_fixed(r.cold_rps, 1) << " req/s)  warm-incremental"
                << " p50/p95/p99=" << format_fixed(r.warm_p50_us, 1) << "/"
                << format_fixed(r.warm_p95_us, 1) << "/"
                << format_fixed(r.warm_p99_us, 1) << " us ("
                << format_fixed(r.warm_rps, 1) << " req/s)\n";
    }
    std::cout << "  incremental responses bit-identical to from-scratch:   "
              << (annotate_identical ? "yes" : "NO — BUG") << "\n";
    if (hw < backend_ladder.back()) {
      std::cout << "  NOTE: " << hw << "-core host — the forwarded ladder "
                << "measures thread contention, not sharding; see the "
                << "comment above bench_cluster.\n";
    }

    std::cout << "\nFixed offered load (400 req/s warm forwards, hedging "
                 "off vs 5ms hedge):\n";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i) {
      const OfferedLoadReading& off = unhedged_readings[i];
      const OfferedLoadReading& on = hedged_readings[i];
      std::cout << "  backends=" << backend_ladder[i]
                << ":  unhedged p50/p95/p99=" << format_fixed(off.p50_us, 1)
                << "/" << format_fixed(off.p95_us, 1) << "/"
                << format_fixed(off.p99_us, 1) << " us ("
                << format_fixed(off.achieved_rps, 1) << " req/s)  hedged"
                << " p50/p95/p99=" << format_fixed(on.p50_us, 1) << "/"
                << format_fixed(on.p95_us, 1) << "/"
                << format_fixed(on.p99_us, 1) << " us ("
                << format_fixed(on.achieved_rps, 1) << " req/s, hedges="
                << on.hedges << ", wins=" << on.hedge_wins << ")\n";
    }

    bool stream_identical = true;
    for (const StreamReading& r : stream_readings)
      stream_identical = stream_identical &&
                         !r.digest.empty() &&
                         r.digest == stream_readings.front().digest;
    for (const StreamReading& r : stream_refit_readings)
      stream_identical = stream_identical &&
                         r.digest == stream_readings.front().digest;
    std::cout << "\nStreaming sustained absorb (4000 arrivals, dashboard "
                 "probe per 200-arrival batch):\n";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i) {
      const StreamReading& off = stream_readings[i];
      const StreamReading& on = stream_refit_readings[i];
      std::cout << "  backends=" << backend_ladder[i] << ":  absorb="
                << format_fixed(off.absorb_rps, 1)
                << " arrivals/s  dashboard p50/p95/p99="
                << format_fixed(off.dash_p50_us, 1) << "/"
                << format_fixed(off.dash_p95_us, 1) << "/"
                << format_fixed(off.dash_p99_us, 1) << " us  with-refits="
                << format_fixed(on.absorb_rps, 1) << " arrivals/s\n";
    }
    std::cout << "  stream digests bit-identical across ladder and refits:  "
              << (stream_identical ? "yes" : "NO — BUG") << "\n";

    std::cout << "\nCold metric battery (kernels vs retained references):\n"
              << "  fast=" << format_fixed(battery.fast_ms, 1)
              << "ms  reference=" << format_fixed(battery.reference_ms, 1)
              << "ms  speedup="
              << format_fixed(battery.reference_ms / battery.fast_ms, 2)
              << "x  bit-identical: "
              << (battery.bit_identical ? "yes" : "NO — BUG") << "\n";

    const auto json_ladder = [&](std::ostream& os,
                                 const std::vector<double>& ms) {
      os << "{";
      for (std::size_t i = 0; i < ladder.size(); ++i)
        os << (i ? ", " : "") << "\"" << ladder[i]
           << "\": " << format_fixed(ms[i], 3);
      os << "}";
    };
    warn_if_host_changed(hw);

    std::ofstream json("BENCH_parallel.json");
    json << "{\n  \"bench\": \"parallel_scaling\",\n"
         << "  \"hardware_concurrency\": " << hw << ",\n"
         << "  \"host_fingerprint\": \"" << host_fingerprint() << "\",\n"
         << "  \"robustness_10seed_ms\": ";
    json_ladder(json, robustness_ms);
    json << ",\n  \"robustness_speedup_t" << ladder.back() << "_vs_t1\": "
         << format_fixed(robustness_ms[0] / robustness_ms.back(), 3)
         << ",\n  \"robustness_bit_identical\": "
         << (robustness_identical ? "true" : "false")
         << ",\n  \"power_12rep_ms\": ";
    json_ladder(json, power_ms);
    json << ",\n  \"embedding_8k_ms\": ";
    json_ladder(json, embed_ms);
    json << ",\n  \"glmm_multistart_ms\": ";
    json_ladder(json, glmm_ms);
    json << ",\n  \"glmm_bit_identical\": "
         << (glmm_identical ? "true" : "false")
         << ",\n  \"run_study_ms\": ";
    json_ladder(json, study_ms);
    json << ",\n  \"run_study_bit_identical\": "
         << (study_identical ? "true" : "false");
    json << ",\n  \"cluster_cold_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i]
           << "\": " << format_fixed(cluster_readings[i].cold_rps, 3);
    json << "},\n  \"cluster_warm_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i]
           << "\": " << format_fixed(cluster_readings[i].warm_rps, 3);
    json << "},\n  \"cluster_warm_forwarded_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": "
           << format_fixed(cluster_readings[i].warm_forwarded_rps, 3);
    json << "},\n  \"cluster_warm_latency_us\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": {\"p50\": "
           << format_fixed(cluster_readings[i].warm_p50_us, 3)
           << ", \"p95\": "
           << format_fixed(cluster_readings[i].warm_p95_us, 3)
           << ", \"p99\": "
           << format_fixed(cluster_readings[i].warm_p99_us, 3) << "}";
    json << "},\n  \"cluster_bit_identical\": "
         << (cluster_identical ? "true" : "false");
    json << ",\n  \"cluster_replication_cold_rps\": {";
    for (std::size_t i = 0; i < replication_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"r" << replication_ladder[i] << "\": "
           << format_fixed(replication_readings[i].cold_rps, 3);
    json << "},\n  \"cluster_replication_warm_forwarded_rps\": {";
    for (std::size_t i = 0; i < replication_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"r" << replication_ladder[i] << "\": "
           << format_fixed(replication_readings[i].warm_forwarded_rps, 3);
    json << "},\n  \"cluster_replication_bit_identical\": "
         << (replication_identical ? "true" : "false");
    json << ",\n  \"annotate_cold_latency_us\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": {\"p50\": "
           << format_fixed(annotate_readings[i].cold_p50_us, 3)
           << ", \"p95\": "
           << format_fixed(annotate_readings[i].cold_p95_us, 3)
           << ", \"p99\": "
           << format_fixed(annotate_readings[i].cold_p99_us, 3) << "}";
    json << "},\n  \"annotate_warm_incremental_latency_us\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": {\"p50\": "
           << format_fixed(annotate_readings[i].warm_p50_us, 3)
           << ", \"p95\": "
           << format_fixed(annotate_readings[i].warm_p95_us, 3)
           << ", \"p99\": "
           << format_fixed(annotate_readings[i].warm_p99_us, 3) << "}";
    json << "},\n  \"annotate_cold_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i]
           << "\": " << format_fixed(annotate_readings[i].cold_rps, 3);
    json << "},\n  \"annotate_warm_incremental_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i]
           << "\": " << format_fixed(annotate_readings[i].warm_rps, 3);
    json << "},\n  \"offered_load_target_rps\": 400";
    json << ",\n  \"offered_load_unhedged_latency_us\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": {\"p50\": "
           << format_fixed(unhedged_readings[i].p50_us, 3) << ", \"p95\": "
           << format_fixed(unhedged_readings[i].p95_us, 3) << ", \"p99\": "
           << format_fixed(unhedged_readings[i].p99_us, 3) << "}";
    json << "},\n  \"offered_load_hedged_latency_us\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": {\"p50\": "
           << format_fixed(hedged_readings[i].p50_us, 3) << ", \"p95\": "
           << format_fixed(hedged_readings[i].p95_us, 3) << ", \"p99\": "
           << format_fixed(hedged_readings[i].p99_us, 3) << "}";
    json << "},\n  \"offered_load_achieved_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i]
           << "\": {\"unhedged\": "
           << format_fixed(unhedged_readings[i].achieved_rps, 3)
           << ", \"hedged\": "
           << format_fixed(hedged_readings[i].achieved_rps, 3) << "}";
    json << "},\n  \"offered_load_hedges\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": "
           << hedged_readings[i].hedges;
    json << "},\n  \"stream_absorb_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i]
           << "\": " << format_fixed(stream_readings[i].absorb_rps, 3);
    json << "},\n  \"stream_refit_absorb_rps\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i]
           << "\": " << format_fixed(stream_refit_readings[i].absorb_rps, 3);
    json << "},\n  \"stream_dashboard_latency_us\": {";
    for (std::size_t i = 0; i < backend_ladder.size(); ++i)
      json << (i ? ", " : "") << "\"" << backend_ladder[i] << "\": {\"p50\": "
           << format_fixed(stream_readings[i].dash_p50_us, 3)
           << ", \"p95\": "
           << format_fixed(stream_readings[i].dash_p95_us, 3)
           << ", \"p99\": "
           << format_fixed(stream_readings[i].dash_p99_us, 3) << "}";
    json << "},\n  \"stream_bit_identical\": "
         << (stream_identical ? "true" : "false");
    json << ",\n  \"annotate_bit_identical\": "
         << (annotate_identical ? "true" : "false")
         << ",\n  \"metric_battery_fast_ms\": "
         << format_fixed(battery.fast_ms, 3)
         << ",\n  \"metric_battery_reference_ms\": "
         << format_fixed(battery.reference_ms, 3)
         << ",\n  \"metric_battery_speedup\": "
         << format_fixed(battery.reference_ms / battery.fast_ms, 3)
         << ",\n  \"metric_battery_bit_identical\": "
         << (battery.bit_identical ? "true" : "false") << "\n}\n";
    std::cout << "\nWrote BENCH_parallel.json\n";
  });
}
