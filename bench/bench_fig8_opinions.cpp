// Figure 8: diverging Likert opinions of names/types by treatment, with
// the Wilcoxon rank-sum tests.
#include "bench/bench_common.h"
#include "analysis/rq3_opinions.h"
#include "report/render.h"
#include "stats/tests.h"
#include "util/rng.h"

namespace {

using namespace decompeval;

void BM_OpinionAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::analyze_opinions(bench::cached_study(), bench::paper_pool()));
  }
}
BENCHMARK(BM_OpinionAnalysis);

void BM_WilcoxonRankSum(benchmark::State& state) {
  const std::size_t n = state.range(0);
  util::Rng rng(4);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(rng.uniform_int(1, 5));
    y[i] = static_cast<double>(rng.uniform_int(1, 5));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::wilcoxon_rank_sum(x, y));
  }
}
BENCHMARK(BM_WilcoxonRankSum)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto opinions = decompeval::analysis::analyze_opinions(
        decompeval::bench::cached_study(), decompeval::bench::paper_pool());
    std::cout << decompeval::report::render_figure8(opinions);
    std::cout << "\nPaper reference: names strongly prefer DIRTY (Wilcoxon "
                 "p = 5.07e-14, location shift 1); types show no overall "
                 "difference (p = 0.2734) with twos_complement as the "
                 "negative outlier.\n";
  });
}
