// Ablation: BLEU smoothing on short identifier strings (DESIGN.md §4).
//
// Raw BLEU collapses to 0 whenever a higher n-gram order has zero matches
// — which is almost always on name-concatenation strings. Lin–Och
// smoothing keeps the metric informative; this bench quantifies the gap on
// the actual study alignments.
#include "bench/bench_common.h"
#include "text/bleu.h"
#include "text/tokenize.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

std::pair<std::vector<std::string>, std::vector<std::string>> name_tokens(
    const snippets::Snippet& snippet) {
  std::string recovered, original;
  for (const auto& p : snippet.variable_alignment) {
    recovered += p.recovered + " ";
    original += p.original + " ";
  }
  for (const auto& p : snippet.type_alignment) {
    recovered += p.recovered + " ";
    original += p.original + " ";
  }
  return {text::split_identifier(recovered), text::split_identifier(original)};
}

void BM_BleuSmoothed(benchmark::State& state) {
  const auto [cand, ref] = name_tokens(bench::paper_pool()[state.range(0)]);
  text::BleuOptions options;
  options.smooth = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::bleu(cand, ref, options));
  }
  state.SetLabel(bench::paper_pool()[state.range(0)].id);
}
BENCHMARK(BM_BleuSmoothed)->DenseRange(0, 3);

void BM_BleuRaw(benchmark::State& state) {
  const auto [cand, ref] = name_tokens(bench::paper_pool()[state.range(0)]);
  text::BleuOptions options;
  options.smooth = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::bleu(cand, ref, options));
  }
  state.SetLabel(bench::paper_pool()[state.range(0)].id);
}
BENCHMARK(BM_BleuRaw)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    std::cout << "BLEU smoothing ablation on the study name alignments:\n";
    std::cout << "snippet    | raw BLEU | smoothed BLEU\n";
    for (const auto& snippet : decompeval::bench::paper_pool()) {
      const auto [cand, ref] = name_tokens(snippet);
      decompeval::text::BleuOptions raw;
      raw.smooth = false;
      decompeval::text::BleuOptions smoothed;
      smoothed.smooth = true;
      std::cout << snippet.id << std::string(11 - snippet.id.size(), ' ')
                << "| " << format_fixed(decompeval::text::bleu(cand, ref, raw).bleu, 4)
                << "   | "
                << format_fixed(decompeval::text::bleu(cand, ref, smoothed).bleu, 4)
                << '\n';
    }
    std::cout << "\nExpected shape: raw BLEU degenerates toward 0 on several "
                 "snippets (no 3/4-gram matches); smoothing preserves the "
                 "ordering the correlations in Table III rely on.\n";
  });
}
