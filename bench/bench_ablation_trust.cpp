// Ablation: the trust-mediated penalty (DESIGN.md §4).
//
// Switching the trust mechanism off removes the paper's signature
// findings: postorder-Q2's Fisher-significant gap shrinks and the RQ4
// perception-vs-performance inversion vanishes, demonstrating that the
// simulator's reproduction of the paper is load-bearing on this mechanism
// rather than incidental.
#include "bench/bench_common.h"
#include "analysis/figures.h"
#include "analysis/rq4_perception.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

study::StudyData run_with_trust_scale(double scale) {
  study::StudyConfig config;  // default seed
  config.response_model.global_trust_penalty *= scale;
  if (scale == 0.0) config.response_model.global_trust_penalty = 0.0;
  // Question-specific penalties live in the snippet pool; scale them too.
  std::vector<snippets::Snippet> pool = snippets::study_snippets();
  for (auto& s : pool)
    for (auto& q : s.questions) {
      // Keep the *mean* treatment effect identical so only the
      // trust-moderation channel is ablated.
      q.dirty_correctness_shift -= q.trust_penalty * 0.5 * (scale - 1.0);
      q.trust_penalty *= scale;
    }
  return study::run_study(config, pool);
}

void BM_StudyWithTrust(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_with_trust_scale(1.0));
}
BENCHMARK(BM_StudyWithTrust);

void BM_StudyWithoutTrust(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_with_trust_scale(0.0));
}
BENCHMARK(BM_StudyWithoutTrust);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    using decompeval::util::format_p_value;
    std::cout << "Trust-mechanism ablation (mean treatment effect held "
                 "fixed):\n";
    std::cout << "scale | postorder-Q2 Fisher p | RQ4 type-rating rho (p)\n";
    for (const double scale : {0.0, 0.5, 1.0, 1.5}) {
      const auto data = run_with_trust_scale(scale);
      const auto pool = decompeval::snippets::study_snippets();
      const auto questions =
          decompeval::analysis::analyze_correctness_by_question(data, pool);
      double fisher_p = 1.0;
      for (const auto& q : questions)
        if (q.question_id == "POSTORDER-Q2") fisher_p = q.fisher().p_value;
      const auto perception =
          decompeval::analysis::analyze_perception(data, pool);
      std::cout << format_fixed(scale, 1) << "   | "
                << format_p_value(fisher_p) << "            | "
                << format_fixed(perception.type_rating_vs_correctness.estimate, 3)
                << " ("
                << format_p_value(perception.type_rating_vs_correctness.p_value)
                << ")\n";
    }
    std::cout << "\nExpected shape: at scale 0 the Fisher gap weakens and the "
                 "RQ4 inversion disappears; both sharpen as scale grows.\n";
  });
}
