// Static-analysis throughput bench: lint (CFG + worklist dataflow +
// artifact walk) and the static-complexity battery over growing synthetic
// pools, on the 1/2/4/hardware thread ladder, with a bit-identity check
// between the serial and parallel sweeps. Appends a "static_analysis"
// section to BENCH_parallel.json (bench_parallel_scaling owns the rest of
// the file), so the perf trajectory is tracked across PRs. On a
// single-core host the speedups hover around 1x.
#include <chrono>
#include <fstream>
#include <functional>
#include <sstream>

#include "bench/bench_common.h"
#include "decompiler/generator.h"
#include "lang/lint.h"
#include "lang/parser.h"
#include "metrics/static_complexity.h"
#include "snippets/corpus_verifier.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

std::vector<std::size_t> thread_ladder() {
  std::vector<std::size_t> ladder = {1, 2, 4};
  const std::size_t hw = util::default_thread_count();
  if (hw > 4) ladder.push_back(hw);
  return ladder;
}

// Lints all three variants of one snippet; returns total diagnostic count
// (the quantity bit-compared across thread counts).
std::size_t lint_snippet(const snippets::Snippet& s) {
  std::size_t total = 0;
  for (const auto* source :
       {&s.original_source, &s.hexrays_source, &s.dirty_source})
    total +=
        lang::lint_function(lang::parse_function(*source, s.parse_options))
            .size();
  return total;
}

void BM_LintOneSnippet(benchmark::State& state) {
  const auto& pool = decompeval::bench::paper_pool();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint_snippet(pool[i % pool.size()]));
    ++i;
  }
}
BENCHMARK(BM_LintOneSnippet)->Unit(benchmark::kMicrosecond);

void BM_StaticComplexityOneSnippet(benchmark::State& state) {
  const auto& pool = decompeval::bench::paper_pool();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = pool[i % pool.size()];
    benchmark::DoNotOptimize(
        metrics::compute_static_complexity(s.dirty_source, s.parse_options));
    ++i;
  }
}
BENCHMARK(BM_StaticComplexityOneSnippet)->Unit(benchmark::kMicrosecond);

// Rewrites BENCH_parallel.json with `section` replacing any previous
// "static_analysis" entry; creates the file if bench_parallel_scaling has
// not run yet.
void append_section(const std::string& section) {
  std::string existing;
  {
    std::ifstream in("BENCH_parallel.json");
    std::stringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  // Drop a previous section (always the trailing key, so the erase also
  // takes the file's closing brace with it); otherwise strip the closing
  // brace so the new trailing key can be appended.
  const std::size_t old_pos = existing.find(",\n  \"static_analysis\"");
  if (old_pos != std::string::npos) {
    existing.erase(old_pos);
  } else {
    const std::size_t brace = existing.find_last_of('}');
    if (brace != std::string::npos) existing.erase(brace);
  }
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' '))
    existing.pop_back();

  std::ofstream out("BENCH_parallel.json");
  if (existing.empty())
    out << "{\n  \"bench\": \"parallel_scaling\"";
  else
    out << existing;
  out << ",\n  \"static_analysis\": " << section << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    const std::size_t hw = util::default_thread_count();
    const auto ladder = thread_ladder();
    const std::vector<std::size_t> pool_sizes = {50, 100, 200};

    std::cout << "Static-analysis throughput (hardware_concurrency = " << hw
              << "):\n\n";

    std::ostringstream json;
    json << "{\n    \"hardware_concurrency\": " << hw;

    bool lint_identical = true;
    bool verify_identical = true;
    for (const std::size_t n : pool_sizes) {
      decompiler::GeneratorConfig config;
      const auto pool = decompiler::generate_snippets(n, config);

      // Lint fan-out over the pool (three variants per snippet).
      std::vector<double> lint_ms;
      std::vector<std::size_t> serial_counts;
      for (const std::size_t threads : ladder) {
        util::ThreadPool tp(threads);
        std::vector<std::size_t> counts;
        lint_ms.push_back(time_ms([&] {
          counts = tp.parallel_map(
              pool, [](const snippets::Snippet& s, std::size_t) {
                return lint_snippet(s);
              });
        }));
        if (threads == 1)
          serial_counts = counts;
        else
          lint_identical = lint_identical && counts == serial_counts;
      }

      // Full corpus verification (lint + alignment cross-checks).
      std::vector<double> verify_ms;
      std::string serial_report;
      for (const std::size_t threads : ladder) {
        snippets::CorpusVerifyOptions options;
        options.threads = threads;
        std::vector<snippets::SnippetVerification> results;
        verify_ms.push_back(time_ms(
            [&] { results = snippets::verify_corpus(pool, options); }));
        const std::string report = snippets::verification_report(results);
        if (threads == 1)
          serial_report = report;
        else
          verify_identical = verify_identical && report == serial_report;
      }

      const auto print_row = [&](const char* label,
                                 const std::vector<double>& ms) {
        std::cout << "  " << label << " n=" << n << ":";
        for (std::size_t i = 0; i < ladder.size(); ++i)
          std::cout << "  t" << ladder[i] << "=" << format_fixed(ms[i], 1)
                    << "ms";
        std::cout << "  (speedup t" << ladder.back() << "/t1 = "
                  << format_fixed(ms[0] / ms.back(), 2) << "x)\n";
      };
      print_row("lint pool  ", lint_ms);
      print_row("verify pool", verify_ms);

      const auto json_ladder = [&](const std::vector<double>& ms) {
        std::ostringstream os;
        os << "{";
        for (std::size_t i = 0; i < ladder.size(); ++i)
          os << (i ? ", " : "") << "\"" << ladder[i]
             << "\": " << format_fixed(ms[i], 3);
        os << "}";
        return os.str();
      };
      json << ",\n    \"lint_pool" << n << "_ms\": " << json_ladder(lint_ms)
           << ",\n    \"verify_pool" << n
           << "_ms\": " << json_ladder(verify_ms);
    }

    std::cout << "  lint counts bit-identical across thread counts:    "
              << (lint_identical ? "yes" : "NO — BUG") << "\n";
    std::cout << "  verify reports bit-identical across thread counts: "
              << (verify_identical ? "yes" : "NO — BUG") << "\n";

    json << ",\n    \"lint_bit_identical\": "
         << (lint_identical ? "true" : "false")
         << ",\n    \"verify_bit_identical\": "
         << (verify_identical ? "true" : "false") << "\n  }";
    append_section(json.str());
    std::cout << "\nAppended static_analysis section to BENCH_parallel.json\n";
  });
}
