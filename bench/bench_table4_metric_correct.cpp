// Table IV: similarity metrics vs correctness — benchmark the Spearman
// machinery on the joined data and regenerate the table.
#include "bench/bench_common.h"
#include "analysis/rq5_metrics.h"
#include "report/render.h"
#include "stats/correlation.h"
#include "util/rng.h"

namespace {

using namespace decompeval;

void BM_SpearmanOnJoinedData(benchmark::State& state) {
  // Spearman over n pairs with heavy ties (metric constant per snippet),
  // the exact workload of the Table IV cells.
  const std::size_t n = state.range(0);
  util::Rng rng(1);
  std::vector<double> metric(n), correct(n);
  for (std::size_t i = 0; i < n; ++i) {
    metric[i] = static_cast<double>(rng.uniform_index(4));  // 4 tie groups
    correct[i] = rng.bernoulli(0.6) ? 1.0 : 0.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::spearman(metric, correct));
  }
}
BENCHMARK(BM_SpearmanOnJoinedData)->Arg(128)->Arg(1024)->Arg(8192);

void BM_HumanEvalPanel(benchmark::State& state) {
  std::vector<metrics::NamePair> pairs;
  for (const auto& snippet : bench::paper_pool())
    pairs.insert(pairs.end(), snippet.variable_alignment.begin(),
                 snippet.variable_alignment.end());
  metrics::HumanEvalConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::simulate_human_evaluation(
        pairs, bench::cached_embeddings(), config));
  }
}
BENCHMARK(BM_HumanEvalPanel);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto result = decompeval::analysis::analyze_metric_correlations(
        decompeval::bench::cached_study(), decompeval::bench::paper_pool(),
        decompeval::bench::cached_embeddings());
    std::cout << decompeval::report::render_table4(result);
    std::cout << "\nPaper reference (rho vs correctness): BLEU +0.079 (n.s.), "
                 "codeBLEU +0.079 (n.s.), Jaccard -0.217*, BERTScore +0.230*, "
                 "VarCLR +0.079 (n.s.), Human(vars) -0.124*, Human(types) "
                 "+0.052 (n.s.). Headline preserved: no metric positively "
                 "predicts correctness.\n";
  });
}
