// Figure 5: per-question correctness by treatment — benchmark the tally
// plus the Fisher exact tests and regenerate the eight panels.
#include "bench/bench_common.h"
#include "analysis/figures.h"
#include "report/render.h"
#include "stats/tests.h"

namespace {

using namespace decompeval;

void BM_CorrectnessByQuestion(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_correctness_by_question(
        bench::cached_study(), bench::paper_pool()));
  }
}
BENCHMARK(BM_CorrectnessByQuestion);

void BM_FisherExact(benchmark::State& state) {
  const unsigned n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fisher_exact(n, n / 2, n / 3, n));
  }
}
BENCHMARK(BM_FisherExact)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto questions = decompeval::analysis::analyze_correctness_by_question(
        decompeval::bench::cached_study(), decompeval::bench::paper_pool());
    std::cout << decompeval::report::render_figure5(questions);
    std::cout << "\nPaper reference: DIRTY ahead on BAPL and TC, behind on "
                 "postorder Q2 (Fisher p = 0.0106) where its swapped "
                 "annotations mislead; other panels near parity.\n";
  });
}
