// Robustness bench: how stable are the paper's qualitative findings across
// simulated cohorts (seeds)? Expected shape: the mechanically-driven
// criteria (nulls, name preference, trust direction, AEEK slowdown) hold at
// high rates; the small-n significance calls (postorder-Q2 Fisher, RQ4
// significance) hold at moderate rates — exactly why the paper warns its
// significance results "should be interpreted with caution".
#include "bench/bench_common.h"
#include "analysis/robustness.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

void BM_RobustnessSweep(benchmark::State& state) {
  analysis::RobustnessConfig config;
  config.n_seeds = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_robustness(config));
  }
}
BENCHMARK(BM_RobustnessSweep)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    decompeval::analysis::RobustnessConfig config;
    config.n_seeds = 30;
    const auto summary = decompeval::analysis::analyze_robustness(config);
    std::cout << "Shape-criterion stability across " << summary.n_seeds
              << " simulated cohorts:\n";
    for (const auto& criterion : summary.criteria) {
      std::cout << "  " << criterion.name
                << std::string(18 - std::min<std::size_t>(
                                        criterion.name.size(), 18),
                               ' ')
                << criterion.held << "/" << criterion.total << "  ("
                << format_fixed(criterion.rate() * 100.0, 0) << "%)\n";
    }
    std::cout << "\nExpected shape: process-level criteria near 100%; "
                 "small-sample significance calls (postorder gap) lower — "
                 "the study's n=40 design detects its own headline effects "
                 "only in a majority, not all, of replications.\n";
  });
}
