// §IV-E human evaluation: the simulated 12-coder similarity panel and its
// ordinal Krippendorff alpha (paper: 0.872, "substantial and reliable").
#include "bench/bench_common.h"
#include "metrics/human_eval.h"
#include "stats/tests.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

std::vector<metrics::NamePair> pooled_pairs() {
  std::vector<metrics::NamePair> pairs;
  for (const auto& snippet : bench::paper_pool()) {
    pairs.insert(pairs.end(), snippet.variable_alignment.begin(),
                 snippet.variable_alignment.end());
    pairs.insert(pairs.end(), snippet.type_alignment.begin(),
                 snippet.type_alignment.end());
  }
  return pairs;
}

void BM_PanelSimulation(benchmark::State& state) {
  const auto pairs = pooled_pairs();
  metrics::HumanEvalConfig config;
  config.n_raters = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::simulate_human_evaluation(
        pairs, bench::cached_embeddings(), config));
  }
}
BENCHMARK(BM_PanelSimulation)->Arg(4)->Arg(12)->Arg(48);

void BM_KrippendorffAlpha(benchmark::State& state) {
  const std::size_t n_units = state.range(0);
  util::Rng rng(5);
  std::vector<std::vector<double>> raw(12, std::vector<double>(n_units));
  for (auto& row : raw)
    for (auto& v : row) v = static_cast<double>(rng.uniform_int(1, 5));
  std::vector<std::span<const double>> ratings(raw.begin(), raw.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::krippendorff_alpha(ratings, stats::AlphaMetric::kOrdinal));
  }
}
BENCHMARK(BM_KrippendorffAlpha)->Arg(32)->Arg(256)->Arg(2048);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    const auto pairs = pooled_pairs();
    decompeval::metrics::HumanEvalConfig config;
    config.seed = 777;
    const auto result = decompeval::metrics::simulate_human_evaluation(
        pairs, decompeval::bench::cached_embeddings(), config);
    std::cout << "Human evaluation panel: " << config.n_raters
              << " simulated expert coders, " << pairs.size()
              << " aligned name/type pairs\n";
    std::cout << "  ordinal Krippendorff alpha = "
              << format_fixed(result.krippendorff_ordinal_alpha, 3)
              << " (paper: 0.872)\n";
    std::cout << "  mean similarity rating = "
              << format_fixed(result.mean_score, 2) << " / 5\n";
    // Sensitivity: alpha as rater noise grows.
    std::cout << "  noise sensitivity:\n";
    for (const double noise : {0.2, 0.45, 0.8, 1.5}) {
      decompeval::metrics::HumanEvalConfig sweep = config;
      sweep.rating_noise_sd = noise;
      const auto r = decompeval::metrics::simulate_human_evaluation(
          pairs, decompeval::bench::cached_embeddings(), sweep);
      std::cout << "    noise sd " << format_fixed(noise, 2) << " -> alpha "
                << format_fixed(r.krippendorff_ordinal_alpha, 3) << '\n';
    }
  });
}
