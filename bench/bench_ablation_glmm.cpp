// Ablation: Laplace GLMM vs a pooled logistic GLM that ignores the random
// effects (DESIGN.md §4). The pooled model understates the standard error
// of the treatment coefficient because it treats the 8 repeated responses
// per participant as independent — exactly the error the paper's use of
// glmer avoids. The bench quantifies both the fit cost and the SE gap.
#include <cmath>

#include "bench/bench_common.h"
#include "analysis/rq1_correctness.h"
#include "linalg/matrix.h"
#include "statdist/distributions.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

// Plain logistic regression by IRLS over the same fixed-effects design.
struct GlmFit {
  std::vector<double> beta;
  std::vector<double> std_error;
};

GlmFit fit_pooled_logistic(const mixed::MixedModelData& d) {
  const std::size_t n = d.n_observations();
  const std::size_t p = d.n_fixed_effects();
  std::vector<double> beta(p, 0.0);
  for (int iter = 0; iter < 50; ++iter) {
    linalg::Matrix info(p, p);
    linalg::Vector score(p, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double eta = 0.0;
      for (std::size_t j = 0; j < p; ++j) eta += d.x(i, j) * beta[j];
      const double mu = 1.0 / (1.0 + std::exp(-eta));
      const double w = std::max(mu * (1.0 - mu), 1e-10);
      for (std::size_t j = 0; j < p; ++j) {
        score[j] += d.x(i, j) * (d.y[i] - mu);
        for (std::size_t k = 0; k <= j; ++k) {
          info(j, k) += w * d.x(i, j) * d.x(i, k);
          if (k != j) info(k, j) += w * d.x(i, j) * d.x(i, k);
        }
      }
    }
    const linalg::Cholesky chol(info);
    const linalg::Vector delta = chol.solve(score);
    double step_norm = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      beta[j] += delta[j];
      step_norm += delta[j] * delta[j];
    }
    if (step_norm < 1e-16) break;
  }
  // Final information for SEs.
  linalg::Matrix info(p, p);
  for (std::size_t i = 0; i < n; ++i) {
    double eta = 0.0;
    for (std::size_t j = 0; j < p; ++j) eta += d.x(i, j) * beta[j];
    const double mu = 1.0 / (1.0 + std::exp(-eta));
    const double w = std::max(mu * (1.0 - mu), 1e-10);
    for (std::size_t j = 0; j < p; ++j)
      for (std::size_t k = 0; k < p; ++k)
        info(j, k) += w * d.x(i, j) * d.x(i, k);
  }
  const linalg::Matrix cov = linalg::spd_inverse(info);
  GlmFit fit;
  fit.beta = beta;
  fit.std_error.resize(p);
  for (std::size_t j = 0; j < p; ++j) fit.std_error[j] = std::sqrt(cov(j, j));
  return fit;
}

// Fit cost as a function of the multi-start budget (Arg = n_starts).
// Arg 1 is the legacy single heuristic start; Arg 8 is the default
// Latin-hypercube search.
void BM_LaplaceGlmm(benchmark::State& state) {
  const auto md =
      analysis::build_model_data(bench::cached_study(), /*timing_model=*/false);
  mixed::FitOptions options;
  options.n_starts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixed::fit_logistic_glmm(md, options));
  }
}
BENCHMARK(BM_LaplaceGlmm)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PooledLogisticGlm(benchmark::State& state) {
  const auto md =
      analysis::build_model_data(bench::cached_study(), /*timing_model=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_pooled_logistic(md));
  }
}
BENCHMARK(BM_PooledLogisticGlm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    const auto md = decompeval::analysis::build_model_data(
        decompeval::bench::cached_study(), /*timing_model=*/false);
    const auto glmm = decompeval::mixed::fit_logistic_glmm(md);
    const auto glm = fit_pooled_logistic(md);
    std::cout << "GLMM-vs-pooled-GLM ablation (Uses DIRTY coefficient):\n";
    std::cout << "  Laplace GLMM:  "
              << format_fixed(glmm.coefficients[1].estimate, 3) << " +/- "
              << format_fixed(glmm.coefficients[1].std_error, 3) << '\n';
    std::cout << "  pooled GLM:    " << format_fixed(glm.beta[1], 3)
              << " +/- " << format_fixed(glm.std_error[1], 3) << '\n';
    std::cout << "  GLMM random-effect SDs: sigma(user) = "
              << format_fixed(glmm.sigma_user, 2) << ", sigma(question) = "
              << format_fixed(glmm.sigma_question, 2) << '\n';

    decompeval::mixed::FitOptions single;
    single.n_starts = 1;
    const auto glmm1 = decompeval::mixed::fit_logistic_glmm(md, single);
    std::cout << "\nMulti-start ablation (Laplace deviance):\n";
    std::cout << "  1 start:  " << format_fixed(glmm1.deviance, 9) << '\n';
    std::cout << "  8 starts: " << format_fixed(glmm.deviance, 9)
              << " (winner: start " << glmm.multi_start.best_start << ")\n";
    std::cout << "  improvement: "
              << format_fixed(glmm1.deviance - glmm.deviance, 9)
              << " (never negative by construction — start 0 is the "
                 "heuristic start)\n";
    std::cout << "\nExpected shape: the pooled GLM's SE is optimistic "
                 "(smaller) because it ignores per-user clustering — the "
                 "reason the paper fits glmer rather than glm.\n";
  });
}
