// Metric-kernel microbench: times every rewritten hot-path kernel against
// the retained reference implementation on a fixed seeded workload, checks
// the outputs are bit-identical, and writes BENCH_kernels.json (host
// fingerprint + old-vs-new speedup ratios) to the working directory.
// Rerunning overwrites the file with fresh numbers for the same workload —
// idempotent by construction. Build with -DDECOMPEVAL_NO_SIMD to watch the
// ratios collapse to ~1x (both sides run the reference).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "embed/corpus.h"
#include "metrics/bertscore.h"
#include "metrics/codebleu.h"
#include "text/bleu.h"
#include "text/similarity.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace decompeval;

// Best-of-3 wall-clock of one workload pass; the sink keeps the optimizer
// honest and doubles as the bit-identity evidence.
double best_ms(const std::function<void(std::vector<double>*)>& fn,
               std::vector<double>* sink) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sink->clear();
    const auto start = std::chrono::steady_clock::now();
    fn(sink);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

std::string random_string(util::Rng& rng, std::size_t length,
                          std::string_view alphabet) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    s.push_back(alphabet[rng.uniform_index(alphabet.size())]);
  return s;
}

std::vector<std::string> random_tokens(util::Rng& rng, std::size_t length,
                                       const std::vector<std::string>& vocab) {
  std::vector<std::string> tokens;
  tokens.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    tokens.push_back(vocab[rng.uniform_index(vocab.size())]);
  return tokens;
}

struct KernelReading {
  std::string name;
  double fast_ms = 0.0;
  double reference_ms = 0.0;
  bool bit_identical = true;
};

KernelReading read_kernel(const std::string& name,
                          const std::function<void(std::vector<double>*)>& fast,
                          const std::function<void(std::vector<double>*)>& ref) {
  KernelReading r;
  r.name = name;
  std::vector<double> fast_values, ref_values;
  r.fast_ms = best_ms(fast, &fast_values);
  r.reference_ms = best_ms(ref, &ref_values);
  r.bit_identical = fast_values == ref_values;
  return r;
}

// Shared workloads (built once; the BENCHMARK entries reuse them too).

const std::vector<std::pair<std::string, std::string>>& string_pairs() {
  static const auto kPairs = [] {
    util::Rng rng(11);
    const std::string_view alphabet = "abcdefghijklmnop();{}=+- ";
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int i = 0; i < 120; ++i)
      pairs.emplace_back(random_string(rng, 20 + rng.uniform_index(400),
                                       alphabet),
                         random_string(rng, 20 + rng.uniform_index(400),
                                       alphabet));
    return pairs;
  }();
  return kPairs;
}

const std::vector<std::pair<std::vector<std::string>,
                            std::vector<std::string>>>&
token_pairs() {
  static const auto kPairs = [] {
    util::Rng rng(23);
    const std::vector<std::string> vocab = {
        "int", "x",   "=",   "0",      ";",   "if",  "(",  ")",
        "ptr", "len", "buf", "return", "for", "i",   "<",  "++"};
    std::vector<std::pair<std::vector<std::string>, std::vector<std::string>>>
        pairs;
    for (int i = 0; i < 120; ++i)
      pairs.emplace_back(random_tokens(rng, 5 + rng.uniform_index(60), vocab),
                         random_tokens(rng, 5 + rng.uniform_index(60), vocab));
    return pairs;
  }();
  return kPairs;
}

const embed::EmbeddingModel& small_model() {
  static const embed::EmbeddingModel kModel = embed::EmbeddingModel::train(
      embed::generate_corpus(500, 42), embed::EmbeddingOptions{});
  return kModel;
}

void BM_LevenshteinKernel(benchmark::State& state) {
  const auto& pairs = string_pairs();
  for (auto _ : state)
    for (const auto& [a, b] : pairs)
      benchmark::DoNotOptimize(text::levenshtein(a, b));
}
BENCHMARK(BM_LevenshteinKernel)->Unit(benchmark::kMillisecond);

void BM_BleuKernel(benchmark::State& state) {
  const auto& pairs = token_pairs();
  for (auto _ : state)
    for (const auto& [cand, ref] : pairs)
      benchmark::DoNotOptimize(text::bleu(cand, ref).bleu);
}
BENCHMARK(BM_BleuKernel)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    using decompeval::util::format_fixed;
    std::vector<KernelReading> readings;

    readings.push_back(read_kernel(
        "levenshtein",
        [](std::vector<double>* sink) {
          for (const auto& [a, b] : string_pairs())
            sink->push_back(
                static_cast<double>(text::levenshtein(a, b)));
        },
        [](std::vector<double>* sink) {
          for (const auto& [a, b] : string_pairs())
            sink->push_back(
                static_cast<double>(text::levenshtein_reference(a, b)));
        }));

    readings.push_back(read_kernel(
        "bleu",
        [](std::vector<double>* sink) {
          for (const auto& [cand, ref] : token_pairs())
            sink->push_back(text::bleu(cand, ref).bleu);
        },
        [](std::vector<double>* sink) {
          for (const auto& [cand, ref] : token_pairs())
            sink->push_back(text::bleu_reference(cand, ref).bleu);
        }));

    readings.push_back(read_kernel(
        "weighted_unigram",
        [](std::vector<double>* sink) {
          for (const auto& [cand, ref] : token_pairs())
            sink->push_back(metrics::weighted_unigram_match(cand, ref));
        },
        [](std::vector<double>* sink) {
          for (const auto& [cand, ref] : token_pairs())
            sink->push_back(
                metrics::weighted_unigram_match_reference(cand, ref));
        }));

    readings.push_back(read_kernel(
        "bert_score",
        [](std::vector<double>* sink) {
          for (const auto& [cand, ref] : token_pairs()) {
            const auto s = metrics::bert_score(cand, ref, small_model());
            sink->push_back(s.f1);
          }
        },
        [](std::vector<double>* sink) {
          for (const auto& [cand, ref] : token_pairs()) {
            const auto s =
                metrics::bert_score_reference(cand, ref, small_model());
            sink->push_back(s.f1);
          }
        }));

    // Embedding training: blocked vs reference PPMI projection kernel.
    // The sink holds one probe token's vector so the bitwise check covers
    // the trained model, not just a timing. Dimension is raised to 64 so
    // the projection kernel under test is a measurable fraction of the
    // train; at the small default dimension the (unchanged) co-occurrence
    // counting dominates and the reading is pure noise.
    const auto corpus = embed::generate_corpus(8000, 42);
    const auto train_sink = [&corpus](bool reference,
                                      std::vector<double>* sink) {
      embed::EmbeddingOptions options;
      options.threads = 1;
      options.dimension = 64;
      options.reference_kernel = reference;
      const auto model = embed::EmbeddingModel::train(corpus, options);
      const auto probe = model.embed_token(corpus.front().front());
      sink->insert(sink->end(), probe.begin(), probe.end());
    };
    readings.push_back(read_kernel(
        "embedding_train_8k",
        [&](std::vector<double>* sink) { train_sink(false, sink); },
        [&](std::vector<double>* sink) { train_sink(true, sink); }));

    std::cout << "Metric kernel microbench (fast vs retained reference):\n";
    bool all_identical = true;
    for (const auto& r : readings) {
      all_identical = all_identical && r.bit_identical;
      std::cout << "  " << r.name << ": fast="
                << format_fixed(r.fast_ms, 2) << "ms  reference="
                << format_fixed(r.reference_ms, 2) << "ms  speedup="
                << format_fixed(r.reference_ms / r.fast_ms, 2)
                << "x  bit-identical: "
                << (r.bit_identical ? "yes" : "NO — BUG") << "\n";
    }

    std::ofstream json("BENCH_kernels.json");
    json << "{\n  \"bench\": \"kernels\",\n"
         << "  \"hardware_concurrency\": " << util::default_thread_count()
         << ",\n  \"host_fingerprint\": \"" << bench::host_fingerprint()
         << "\",\n  \"kernels\": {";
    for (std::size_t i = 0; i < readings.size(); ++i) {
      const auto& r = readings[i];
      json << (i ? "," : "") << "\n    \"" << r.name << "\": {\"fast_ms\": "
           << format_fixed(r.fast_ms, 3) << ", \"reference_ms\": "
           << format_fixed(r.reference_ms, 3) << ", \"speedup\": "
           << format_fixed(r.reference_ms / r.fast_ms, 3)
           << ", \"bit_identical\": "
           << (r.bit_identical ? "true" : "false") << "}";
    }
    json << "\n  },\n  \"all_bit_identical\": "
         << (all_identical ? "true" : "false") << "\n}\n";
    std::cout << "\nWrote BENCH_kernels.json\n";
  });
}
