// Figure 7: time to the *correct* answer on AEEK-Q2 — the paper's "slower
// path to the right conclusion" under DIRTY.
#include "bench/bench_common.h"
#include "analysis/figures.h"
#include "report/render.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace {

using namespace decompeval;

void BM_TimeToCorrectAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_time_to_correct(
        bench::cached_study(), "AEEK-Q2"));
  }
}
BENCHMARK(BM_TimeToCorrectAnalysis);

void BM_FiveNumberSummary(benchmark::State& state) {
  const std::size_t n = state.range(0);
  util::Rng rng(3);
  std::vector<double> samples(n);
  for (auto& v : samples) v = rng.lognormal(5.5, 0.6);
  for (auto _ : state) {
    std::vector<double> copy = samples;
    benchmark::DoNotOptimize(stats::five_number_summary(std::move(copy)));
  }
}
BENCHMARK(BM_FiveNumberSummary)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto timing = decompeval::analysis::analyze_time_to_correct(
        decompeval::bench::cached_study(), "AEEK-Q2");
    std::cout << decompeval::report::render_figure7(timing);
    std::cout << "\nPaper reference: DIRTY users took just over 3.5 minutes "
                 "longer to reach the correct answer — the misnamed `ret` "
                 "variable forces a full re-scan of the return paths.\n";
  });
}
