// Table II: LMER timing model — benchmark the REML fit and regenerate the
// paper's table.
#include "bench/bench_common.h"
#include "analysis/rq1_correctness.h"
#include "analysis/rq2_timing.h"
#include "report/render.h"

namespace {

using namespace decompeval;

void BM_LmmFit(benchmark::State& state) {
  const auto md =
      analysis::build_model_data(bench::cached_study(), /*timing_model=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixed::fit_lmm(md));
  }
}
BENCHMARK(BM_LmmFit)->Unit(benchmark::kMillisecond);

void BM_RemlCriterionScaling(benchmark::State& state) {
  // REML fit cost as the design grows (users × 8 questions).
  const std::size_t n_users = state.range(0);
  study::StudyConfig config;
  config.seed = 40;
  config.cohort.n_students = n_users - 11;
  const auto data = study::run_study(config);
  const auto md = analysis::build_model_data(data, /*timing_model=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixed::fit_lmm(md));
  }
  state.SetLabel(std::to_string(md.n_observations()) + " observations");
}
BENCHMARK(BM_RemlCriterionScaling)
    ->Arg(20)
    ->Arg(42)
    ->Arg(84)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto result =
        decompeval::analysis::analyze_timing(decompeval::bench::cached_study());
    std::cout << decompeval::report::render_table2(result);
    std::cout << "\nPaper reference: Uses DIRTY +26.3 +/- 16.9 s (n.s.), "
                 "sigma(Users)=94.8, sigma(Questions)=131.0, R2m=0.025, "
                 "R2c=0.431, n=296, 37 users, 8 questions.\n";
  });
}
