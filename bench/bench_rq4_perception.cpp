// RQ4: perception vs performance — the Spearman inversion and the trust
// analysis (plus the in-text Fisher and Wilcoxon results of §IV-A).
#include "bench/bench_common.h"
#include "analysis/figures.h"
#include "analysis/rq4_perception.h"
#include "report/render.h"

namespace {

using namespace decompeval;

void BM_PerceptionAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_perception(
        bench::cached_study(), bench::paper_pool()));
  }
}
BENCHMARK(BM_PerceptionAnalysis);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto perception = decompeval::analysis::analyze_perception(
        decompeval::bench::cached_study(), decompeval::bench::paper_pool());
    std::cout << decompeval::report::render_rq4(perception);
    std::cout << "\nPaper reference: type ratings vs correctness rho = "
                 "+0.1035, p = 0.0246 (worse ratings, more correct); name "
                 "ratings n.s. (p = 0.6467); incorrect DIRTY users trusted "
                 "the suggestions more (Wilcoxon p = 0.0248).\n";
  });
}
