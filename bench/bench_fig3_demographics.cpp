// Figure 3: participant demographics — benchmark cohort generation and
// regenerate the demographic bars.
#include "bench/bench_common.h"
#include "analysis/figures.h"
#include "report/render.h"

namespace {

using namespace decompeval;

void BM_CohortGeneration(benchmark::State& state) {
  study::CohortConfig config;
  config.seed = 68;
  for (auto _ : state) {
    benchmark::DoNotOptimize(study::generate_cohort(config));
  }
}
BENCHMARK(BM_CohortGeneration);

void BM_DemographicsAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::analyze_demographics(bench::cached_study()));
  }
}
BENCHMARK(BM_DemographicsAnalysis);

}  // namespace

int main(int argc, char** argv) {
  return decompeval::bench::run_bench_main(argc, argv, [] {
    const auto figure =
        decompeval::analysis::analyze_demographics(
            decompeval::bench::cached_study());
    std::cout << decompeval::report::render_figure3(figure);
    std::cout << "\nPaper reference: 40 analyzed participants (30 students, "
                 "9 professionals, 1 unemployed), predominantly male and "
                 "18-34, education skewed to no-degree/bachelor's.\n";
  });
}
