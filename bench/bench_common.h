// Shared setup for the benchmark harness: one cached study run and
// embedding model per process, plus the custom main that runs the
// google-benchmark timings and then prints the reproduced table/figure so
// each bench binary regenerates its piece of the paper.
#pragma once

#include <benchmark/benchmark.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <iostream>
#include <sstream>
#include <string>

#include "core/replication.h"
#include "util/parallel.h"

namespace decompeval::bench {

inline const study::StudyData& cached_study() {
  static const study::StudyData kData = study::run_study(study::StudyConfig{});
  return kData;
}

inline const std::vector<snippets::Snippet>& paper_pool() {
  return snippets::study_snippets();
}

inline const embed::EmbeddingModel& cached_embeddings() {
  static const embed::EmbeddingModel kModel =
      embed::EmbeddingModel::train_default(8000, 42);
  return kModel;
}

/// Stable identity of the machine the numbers were taken on: hostname,
/// kernel, and core count. Stored in every BENCH_*.json this harness
/// writes so a perf trajectory mixing hosts is visible instead of
/// silently misleading.
inline std::string host_fingerprint() {
  char hostname[256] = "unknown";
  ::gethostname(hostname, sizeof hostname - 1);
  utsname uts{};
  std::ostringstream os;
  os << hostname;
  if (::uname(&uts) == 0) os << "|" << uts.sysname << " " << uts.release;
  os << "|" << util::default_thread_count() << " cores";
  return os.str();
}

/// Runs registered benchmarks, then the reproduction printer.
template <typename Printer>
int run_bench_main(int argc, char** argv, Printer&& print_reproduction) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::cout << '\n';
  print_reproduction();
  return 0;
}

}  // namespace decompeval::bench
