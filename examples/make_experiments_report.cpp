// Regenerates EXPERIMENTS.md from a fresh replication run: every table and
// figure of the paper, its reference values, and our measured values, with
// the shape-level verdicts evaluated by the experiment registry.
//
//   ./build/examples/make_experiments_report [output-path] [seed]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/experiment_registry.h"
#include "core/replication.h"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "EXPERIMENTS.md";
  decompeval::core::ReplicationConfig config;
  if (argc > 2) config.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));

  std::cout << "Running replication (seed " << config.seed << ")...\n";
  const auto report = decompeval::core::run_replication(config);
  const auto records = decompeval::core::build_experiment_records(report);
  const std::string markdown =
      decompeval::core::render_experiments_markdown(records, config.seed);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  out << markdown;
  std::cout << "Wrote " << path << " (" << records.size()
            << " experiments)\n";

  std::size_t matched = 0, total = 0;
  for (const auto& record : records)
    for (const auto& value : record.values) {
      ++total;
      if (value.shape_match) ++matched;
    }
  std::cout << "Shape criteria met: " << matched << " / " << total << '\n';
  return matched == total ? 0 : 2;
}
