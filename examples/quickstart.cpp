// Quickstart: run the full DSN'25 replication pipeline with default
// settings and print the text report (every table and figure).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/replication.h"

int main(int argc, char** argv) {
  decompeval::core::ReplicationConfig config;
  if (argc > 1) config.seed = static_cast<std::uint64_t>(std::atoll(argv[1]));

  const decompeval::core::ReplicationReport report =
      decompeval::core::run_replication(config);
  std::cout << report.rendered;
  return 0;
}
