// Custom study designer: runs the full pipeline on a *synthetic* snippet
// pool with a configurable DIRTY-like recovery quality, prints the key
// analyses, and exports the raw per-response and per-opinion data as CSV —
// the format the paper's replication package ships.
//
// Usage:
//   ./build/examples/custom_study [n_snippets] [exact_rate] [misleading_rate] [seed]
// e.g. a study where the recovery model is nearly perfect:
//   ./build/examples/custom_study 12 0.8 0.0 7
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/figures.h"
#include "analysis/rq1_correctness.h"
#include "analysis/rq2_timing.h"
#include "decompiler/generator.h"
#include "report/render.h"
#include "study/engine.h"
#include "util/csv.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace decompeval;

  const std::size_t n_snippets =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const double exact_rate = argc > 2 ? std::atof(argv[2]) : 0.20;
  const double misleading_rate = argc > 3 ? std::atof(argv[3]) : 0.15;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 77;

  decompiler::GeneratorConfig generator;
  generator.seed = seed;
  generator.recovery_rates.exact = exact_rate;
  generator.recovery_rates.misleading = misleading_rate;
  // Keep the remaining mass on synonym/related in the default 35:20 ratio.
  const double remaining = 1.0 - exact_rate - misleading_rate - 0.10;
  generator.recovery_rates.synonym = std::max(0.0, remaining * 0.64);
  generator.recovery_rates.related = std::max(0.0, remaining * 0.36);
  generator.recovery_rates.validate();

  std::cout << "Generating " << n_snippets
            << " synthetic snippets (exact=" << exact_rate
            << ", misleading=" << misleading_rate << ", seed=" << seed
            << ")\n\n";
  const auto pool = decompiler::generate_snippets(n_snippets, generator);

  study::StudyConfig config;
  config.seed = seed;
  const study::StudyData data = study::run_study(config, pool);

  std::cout << "Recruited " << data.cohort.size() << ", excluded "
            << data.excluded_participants.size() << " by the quality check, "
            << data.responses.size() << " responses collected.\n\n";

  const auto table1 = analysis::analyze_correctness(data);
  std::cout << report::render_table1(table1) << '\n';
  const auto table2 = analysis::analyze_timing(data);
  std::cout << report::render_table2(table2) << '\n';
  const auto figure5 = analysis::analyze_correctness_by_question(data, pool);
  std::cout << report::render_figure5(figure5) << '\n';

  // ---- CSV export of the raw data ----
  {
    std::ofstream out("responses.csv");
    util::CsvWriter csv(out);
    csv.write_row({"participant", "question", "treatment", "answered",
                   "gradeable", "correct", "seconds"});
    for (const auto& r : data.responses) {
      csv.write_row({std::to_string(r.participant_id), r.question_id,
                     r.treatment == study::Treatment::kDirty ? "DIRTY"
                                                             : "HexRays",
                     r.answered ? "1" : "0", r.gradeable ? "1" : "0",
                     r.correct ? "1" : "0",
                     util::format_fixed(r.seconds, 1)});
    }
  }
  {
    std::ofstream out("opinions.csv");
    util::CsvWriter csv(out);
    csv.write_row({"participant", "snippet", "treatment", "argument",
                   "name_rating", "type_rating"});
    for (const auto& o : data.opinions) {
      for (std::size_t arg = 0; arg < o.name_ratings.size(); ++arg) {
        csv.write_row({std::to_string(o.participant_id),
                       pool[o.snippet_index].id,
                       o.treatment == study::Treatment::kDirty ? "DIRTY"
                                                               : "HexRays",
                       std::to_string(arg + 1),
                       std::to_string(o.name_ratings[arg]),
                       std::to_string(o.type_ratings[arg])});
      }
    }
  }
  std::cout << "Raw data written to responses.csv and opinions.csv\n";
  return 0;
}
