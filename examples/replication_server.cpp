// Long-lived replication service over a Unix-domain socket.
//
//   replication_server /tmp/decompeval.sock [workers] [watchdog_ms]
//
// Talk to it with line-delimited JSON, e.g.:
//   printf '{"op":"ping"}\n' | nc -U /tmp/decompeval.sock
//   printf '{"op":"run_replication","seed":7}\n' | nc -U /tmp/decompeval.sock
//   printf '{"op":"shutdown"}\n' | nc -U /tmp/decompeval.sock
//
// See README.md ("Fault injection & replication service") for the full
// protocol and status catalogue.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "service/server.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: replication_server <socket-path> [workers]"
              << " [watchdog_ms]\n";
    return 2;
  }
  decompeval::service::ServerOptions options;
  options.socket_path = argv[1];
  if (argc > 2) options.workers = static_cast<std::size_t>(std::atoi(argv[2]));
  if (argc > 3)
    options.watchdog_ms = static_cast<std::uint64_t>(std::atoll(argv[3]));

  decompeval::service::ReplicationServer server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "failed to start: " << e.what() << "\n";
    return 1;
  }
  std::cout << "replication server listening on " << server.socket_path()
            << " (workers=" << options.workers
            << ", watchdog_ms=" << options.watchdog_ms << ")\n";
  // Runs until a client sends {"op":"shutdown"}.
  while (server.running())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::cout << "server stopped\n";
  return 0;
}
