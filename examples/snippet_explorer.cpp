// Snippet explorer: inspect the study materials the way a participant (or
// a study designer) would — the three aligned variants of each snippet,
// the structural "beacons" the comprehension literature identifies, the
// manual name alignment, and a live demo of the pseudo-decompiler and the
// DIRTY-like recovery model on fresh code.
//
// Usage:
//   ./build/examples/snippet_explorer            # list snippets
//   ./build/examples/snippet_explorer AEEK       # show one snippet
//   ./build/examples/snippet_explorer --demo     # decompiler pipeline demo
#include <iostream>
#include <map>
#include <string>

#include "decompiler/dirty_model.h"
#include "decompiler/generator.h"
#include "decompiler/pseudo_decompiler.h"
#include "lang/analysis.h"
#include "lang/parser.h"
#include "snippets/snippet.h"
#include "study/survey.h"

namespace {

using namespace decompeval;

void print_features(const lang::Function& fn) {
  const auto f = lang::structural_features(fn);
  std::cout << "  beacons: " << f.call_count << " calls";
  if (!f.callee_names.empty()) {
    std::cout << " (";
    for (std::size_t i = 0; i < f.callee_names.size(); ++i)
      std::cout << (i ? ", " : "") << f.callee_names[i];
    std::cout << ")";
  }
  std::cout << ", " << f.string_literal_count << " strings, "
            << f.numeric_literal_count << " constants, depth "
            << f.max_nesting_depth << ", " << f.loop_count << " loops, "
            << f.branch_count << " branches, " << f.cast_count << " casts, "
            << f.return_count << " returns\n";
}

void show_snippet(const snippets::Snippet& snippet) {
  std::cout << "=== " << snippet.id << ": " << snippet.function_name << " ("
            << snippet.project << ")\n";
  std::cout << snippet.description << "\n\n";
  const struct {
    const char* label;
    snippets::Variant variant;
  } variants[] = {{"Original source", snippets::Variant::kOriginal},
                  {"Hex-Rays output", snippets::Variant::kHexRays},
                  {"DIRTY-annotated", snippets::Variant::kDirty}};
  for (const auto& [label, variant] : variants) {
    std::cout << "--- " << label << " ---\n";
    std::cout << study::SurveyEngine::number_lines(snippet.source(variant));
    const auto fn =
        lang::parse_function(snippet.source(variant), snippet.parse_options);
    print_features(fn);
    std::cout << '\n';
  }
  std::cout << "--- Manual alignment (original -> DIRTY) ---\n";
  for (const auto& pair : snippet.variable_alignment)
    std::cout << "  var  " << pair.original << " -> " << pair.recovered << '\n';
  for (const auto& pair : snippet.type_alignment)
    std::cout << "  type " << pair.original << " -> " << pair.recovered << '\n';
  std::cout << "\n--- Questions ---\n";
  for (const auto& q : snippet.questions) {
    std::cout << "  [" << q.id << "] " << q.prompt << '\n';
    std::cout << "  key: " << q.answer_key << "\n\n";
  }
}

void run_demo() {
  const char* original = R"(int count_matches(const int *values, int count, int threshold) {
  int index;
  int total;
  total = 0;
  for (index = 0; index < count; index = index + 1) {
    if (values[index] >= threshold)
      total = total + 1;
  }
  return total;
})";
  std::cout << "=== Pseudo-decompiler + DIRTY-model demo ===\n\n";
  std::cout << "--- Original ---\n" << original << "\n\n";

  const auto decompiled = decompiler::pseudo_decompile(original);
  std::cout << "--- Pseudo-decompiled (Hex-Rays-style) ---\n"
            << decompiled.source << '\n';

  decompiler::DirtyModel model({}, 11);
  std::map<std::string, std::string> names;
  std::cout << "--- DIRTY-like recovery ---\n";
  for (const auto& [orig, placeholder] : decompiled.rename_map) {
    const auto r = model.recover_name(orig, placeholder);
    names[placeholder] = r.recovered;
    std::cout << "  " << placeholder << " -> " << r.recovered << "  ["
              << decompiler::to_string(r.outcome) << ", truth: " << orig
              << "]\n";
  }
  const std::string annotated =
      decompiler::apply_renames(decompiled.source, names, {}, {});
  std::cout << "\n--- Annotated output ---\n" << annotated << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--demo") {
    run_demo();
    return 0;
  }
  if (argc > 1) {
    try {
      show_snippet(snippets::snippet_by_id(argv[1]));
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 1;
    }
    return 0;
  }
  std::cout << "Study snippets (pass an id to inspect, or --demo):\n";
  for (const auto& snippet : snippets::study_snippets())
    std::cout << "  " << snippet.id << "  " << snippet.function_name << " ("
              << snippet.project << ")\n";
  return 0;
}
