// Sharded replication cluster, end to end in one binary.
//
//   ./replication_cluster [n_backends] [cache_dir]
//
// Forks `n_backends` (default 3) backend processes, each serving
// ServiceCore + the persistent disk cache on its own Unix socket (all
// sharing one cache directory tree, one subdirectory per backend), then
// runs a consistent-hashing dispatcher in front on a TCP port. Demo
// traffic goes through the dispatcher: a seed sweep (cold), the same
// sweep again (served from cache), and the cluster/cache introspection
// ops. Finally every backend gets a "shutdown" op and is reaped.
//
// Run it twice with the same cache_dir to watch the cold pass turn into
// disk hits across a process restart.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "cluster/dispatcher.h"
#include "core/replication.h"
#include "service/server.h"

using namespace decompeval;
using service::Json;

namespace {

Json study_request(std::uint64_t seed) {
  Json req = Json::object();
  req.set("op", Json::string("run_study"));
  req.set("seed", Json::number(static_cast<double>(seed)));
  return req;
}

// Child process body: serve one backend until its socket receives a
// "shutdown" op. Never returns.
[[noreturn]] void run_backend(const std::string& socket_path,
                              const std::string& cache_dir) {
  cluster::ClusterBackendOptions backend_options;
  backend_options.cache.directory = cache_dir;
  backend_options.cache.version = core::version();
  cluster::ClusterBackend backend(backend_options);

  service::ServerOptions options;
  options.socket_path = socket_path;
  options.workers = 2;
  options.handler = backend.handler();
  // Warm repeats are answered on the connection thread from the backend's
  // rendered-line cache, skipping the queue and both worker handoffs.
  options.fast_path = backend.fast_path();
  service::ReplicationServer server(options);
  server.start();
  while (server.running())
    ::usleep(20 * 1000);  // the shutdown op stops the server
  server.stop();
  std::_Exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  const int n_backends = argc > 1 ? std::stoi(argv[1]) : 3;
  const std::string cache_root =
      argc > 2 ? argv[2]
               : "/tmp/decompeval-cluster-" + std::to_string(::getpid());

  // --- spawn the backend shard processes --------------------------------
  cluster::DispatcherOptions dispatch;
  std::vector<pid_t> children;
  std::vector<std::string> sockets;
  for (int i = 0; i < n_backends; ++i) {
    const std::string socket_path = cache_root + "-backend-" +
                                    std::to_string(i) + ".sock";
    const std::string cache_dir = cache_root + "/backend-" + std::to_string(i);
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 1;
    }
    if (pid == 0) run_backend(socket_path, cache_dir);  // child; never returns
    children.push_back(pid);
    sockets.push_back(socket_path);
    cluster::BackendEndpoint endpoint;
    endpoint.id = "backend-" + std::to_string(i);
    endpoint.socket_path = socket_path;
    dispatch.backends.push_back(endpoint);
    std::cout << "spawned backend-" << i << " pid=" << pid << " socket="
              << socket_path << "\n";
  }

  // --- dispatcher front-end on TCP --------------------------------------
  // Opt into the dispatcher's rendered-response cache: warm repeats are
  // answered at the front door without any forwarding.
  dispatch.response_cache_capacity = 256;
  cluster::Dispatcher dispatcher(dispatch);
  dispatcher.start();
  service::ServerOptions front_options;
  front_options.tcp_port = 0;  // ephemeral, loopback
  front_options.workers = 4;
  front_options.max_queue = 32;
  front_options.handler = dispatcher.handler();
  front_options.fast_path = dispatcher.fast_path();
  service::ReplicationServer front(front_options);
  front.start();
  std::cout << "dispatcher listening on 127.0.0.1:" << front.tcp_port()
            << "\n\n";

  service::ServiceClient client;
  client.connect_tcp("127.0.0.1", front.tcp_port());

  // --- demo traffic ------------------------------------------------------
  for (const char* pass : {"cold", "warm"}) {
    std::cout << "--- " << pass << " pass (seeds 1..6 via dispatcher) ---\n";
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Json r = client.call(study_request(seed));
      std::cout << "  seed " << seed << ": " << r.get_string("status", "?")
                << " digest=" << r.get_string("digest", "?") << "\n";
    }
  }

  std::cout << "\n--- cluster_stats ---\n";
  Json stats_req = Json::object();
  stats_req.set("op", Json::string("cluster_stats"));
  std::cout << client.call(stats_req).dump() << "\n";

  std::cout << "\n--- per-backend cache_stats ---\n";
  Json cache_req = Json::object();
  cache_req.set("op", Json::string("cache_stats"));
  for (int i = 0; i < n_backends; ++i) {
    service::ServiceClient direct;
    direct.connect(sockets[i]);
    const Json s = direct.call(cache_req);
    std::cout << "  backend-" << i << ": disk_stores="
              << s.get_number("disk_stores", 0) << " disk_hits="
              << s.get_number("disk_hits", 0) << " memory_hits="
              << s.get_number("disk_memory_hits", 0) << "\n";
  }

  // --- orderly teardown --------------------------------------------------
  front.stop();
  dispatcher.stop();
  Json shutdown = Json::object();
  shutdown.set("op", Json::string("shutdown"));
  for (int i = 0; i < n_backends; ++i) {
    try {
      service::ServiceClient direct;
      direct.connect(sockets[i]);
      direct.call(shutdown);
    } catch (const std::exception&) {
      // Backend already gone; the waitpid below still reaps it.
    }
  }
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  std::cout << "\nall backends shut down; cache persists in " << cache_root
            << "\n";
  return 0;
}
