// Sharded, replicated cluster with supervised backend processes.
//
//   ./replication_cluster [n_backends] [cache_dir]
//
// A Supervisor fork/execs `n_backends` (default 3) cluster_backend
// processes — each serving ServiceCore + disk cache + command journal on
// its own Unix socket — and watches them: any child that dies is
// restarted with backoff and re-warmed from its journal. A
// consistent-hashing dispatcher with replication_factor=2 fronts the
// shards on TCP: every computed result is installed on its ring replica,
// so killing a primary mid-demo loses nothing.
//
// Demo traffic: a cold seed sweep, kill -9 of one backend, the same
// sweep again (replicas + supervisor make it whole), cluster/cache
// introspection, and a cache_gc pass. Ctrl-C at any point is safe:
// install_signal_cleanup() guarantees no orphaned backend survives an
// abnormal dispatcher exit.
//
// Run it twice with the same cache_dir to watch the cold pass turn into
// disk hits across a process restart.
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "cluster/supervisor.h"
#include "service/server.h"

using namespace decompeval;
using service::Json;

namespace {

Json study_request(std::uint64_t seed) {
  Json req = Json::object();
  req.set("op", Json::string("run_study"));
  req.set("seed", Json::number(static_cast<double>(seed)));
  return req;
}

// The exec'd backend binary lives next to this one.
std::string backend_binary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "./cluster_backend";
  std::string self(buf, static_cast<std::size_t>(n));
  const std::size_t slash = self.rfind('/');
  return self.substr(0, slash + 1) + "cluster_backend";
}

}  // namespace

int main(int argc, char** argv) {
  const int n_backends = argc > 1 ? std::stoi(argv[1]) : 3;
  const std::string cache_root =
      argc > 2 ? argv[2]
               : "/tmp/decompeval-cluster-" + std::to_string(::getpid());

  // --- supervised backend shard processes --------------------------------
  // Even if this process dies abnormally (Ctrl-C, SIGTERM), every child
  // is SIGKILLed from the signal handler — no orphans, ever.
  cluster::Supervisor::install_signal_cleanup();

  cluster::SupervisorOptions supervise;
  cluster::DispatcherOptions dispatch;
  std::vector<std::string> sockets;
  for (int i = 0; i < n_backends; ++i) {
    const std::string id = "backend-" + std::to_string(i);
    const std::string socket_path =
        cache_root + "-" + id + ".sock";
    const std::string shard_dir = cache_root + "/" + id;
    cluster::SupervisedBackend spec;
    spec.id = id;
    spec.socket_path = socket_path;
    // The journal sits next to the cache directory (never inside it —
    // the cache janitor sweeps stale non-.json files in its directory).
    spec.argv = {backend_binary(),
                 "--socket",    socket_path,
                 "--cache-dir", shard_dir,
                 "--journal",   shard_dir + ".journal",
                 "--id",        id};
    supervise.backends.push_back(spec);
    sockets.push_back(socket_path);
    cluster::BackendEndpoint endpoint;
    endpoint.id = id;
    endpoint.socket_path = socket_path;
    dispatch.backends.push_back(endpoint);
  }
  cluster::Supervisor supervisor(supervise);
  supervisor.start();
  for (int i = 0; i < n_backends; ++i) {
    const std::string id = "backend-" + std::to_string(i);
    if (!supervisor.wait_until_serving(id, 10000)) {
      std::cerr << id << " never came up\n";
      return 1;
    }
    std::cout << "serving " << id << " pid=" << supervisor.pid_of(id)
              << " socket=" << sockets[i] << "\n";
  }

  // --- replicated dispatcher front-end on TCP ----------------------------
  dispatch.replication_factor = 2;
  // Overload controls, tuned for a demo: requests arriving with less than
  // 5ms of deadline budget are refused up front, retries spend from a
  // per-backend token bucket (half a token earned per success), three
  // consecutive failures open a backend's circuit breaker for 2s, a
  // backend whose p95 drifts 4x past its peers is ejected, and a primary
  // quiet past the p95 forward latency (floored at 10ms) gets a hedged
  // second attempt on its ring replica.
  dispatch.deadline_floor_ms = 5.0;
  dispatch.retry_budget_ratio = 0.5;
  dispatch.breaker_failure_threshold = 3;
  dispatch.breaker_cooldown_ms = 2000;
  dispatch.breaker_latency_window = 64;
  dispatch.hedge_delay_ms = 10.0;
  cluster::Dispatcher dispatcher(dispatch);
  dispatcher.start();
  service::ServerOptions front_options;
  front_options.tcp_port = 0;  // ephemeral, loopback
  front_options.workers = 4;
  front_options.max_queue = 32;
  front_options.handler = dispatcher.handler();
  service::ReplicationServer front(front_options);
  front.start();
  std::cout << "dispatcher (R=2) listening on 127.0.0.1:" << front.tcp_port()
            << "\n\n";

  service::ServiceClient client;
  client.connect_tcp("127.0.0.1", front.tcp_port());

  // --- demo traffic ------------------------------------------------------
  std::cout << "--- cold pass (seeds 1..6 via dispatcher) ---\n";
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Json r = client.call(study_request(seed));
    std::cout << "  seed " << seed << ": " << r.get_string("status", "?")
              << " digest=" << r.get_string("digest", "?") << "\n";
  }

  std::cout << "\n--- kill -9 backend-0, then the same sweep ---\n";
  supervisor.kill_backend("backend-0", SIGKILL);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Json r = client.call(study_request(seed));
    std::cout << "  seed " << seed << ": " << r.get_string("status", "?")
              << " digest=" << r.get_string("digest", "?") << "\n";
  }
  supervisor.wait_until_serving("backend-0", 10000);
  // The supervisor runs its own serving check + re-warm just after ours
  // succeeds; give its bookkeeping a moment before reading the counter.
  for (int i = 0; i < 500 && supervisor.restarts_of("backend-0") == 0; ++i)
    ::usleep(10 * 1000);
  std::cout << "  backend-0 restarted (restarts="
            << supervisor.restarts_of("backend-0") << ") and re-warmed\n";

  std::cout << "\n--- cluster_stats ---\n";
  Json stats_req = Json::object();
  stats_req.set("op", Json::string("cluster_stats"));
  const Json stats = client.call(stats_req);
  std::cout << stats.dump() << "\n";
  std::cout << "  overload controls: deadline_refusals="
            << stats.get_number("deadline_refusals", 0)
            << " retries_suppressed="
            << stats.get_number("retries_suppressed", 0)
            << " breaker_opens=" << stats.get_number("breaker_opens", 0)
            << " slow_peer_ejections="
            << stats.get_number("slow_peer_ejections", 0)
            << " hedges=" << stats.get_number("hedges", 0) << " hedge_wins="
            << stats.get_number("hedge_wins", 0) << "\n";

  std::cout << "\n--- per-backend cache_stats + cache_gc ---\n";
  Json cache_req = Json::object();
  cache_req.set("op", Json::string("cache_stats"));
  Json gc_req = Json::object();
  gc_req.set("op", Json::string("cache_gc"));
  gc_req.set("max_bytes", Json::number(256.0 * 1024.0));
  for (int i = 0; i < n_backends; ++i) {
    try {
      service::ServiceClient direct;
      direct.connect(sockets[i]);
      const Json s = direct.call(cache_req);
      const Json g = direct.call(gc_req);
      std::cout << "  backend-" << i << ": disk_stores="
                << s.get_number("disk_stores", 0) << " disk_hits="
                << s.get_number("disk_hits", 0) << " disk_bytes="
                << s.get_number("disk_bytes", 0) << " gc_deleted="
                << g.get_number("files_deleted", 0) << "\n";
    } catch (const std::exception& e) {
      std::cout << "  backend-" << i << ": unreachable (" << e.what() << ")\n";
    }
  }

  // --- orderly teardown --------------------------------------------------
  front.stop();
  dispatcher.stop();
  supervisor.stop();  // shutdown op → SIGTERM → SIGKILL; reaps every child
  std::cout << "\nall backends shut down; cache persists in " << cache_root
            << "\n";
  return 0;
}
