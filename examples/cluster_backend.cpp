// Standalone cluster backend: one ClusterBackend (ServiceCore + disk
// cache + command journal) served on a Unix socket. This is the binary
// the Supervisor fork/execs — exec'ing a fresh single-purpose process is
// the only sanitizer-safe way to supervise children from multithreaded
// test binaries (fork without exec in a threaded TSan process is UB).
//
//   ./cluster_backend --socket PATH [--cache-dir DIR] [--journal PATH]
//                     [--max-bytes N] [--workers N] [--id NAME]
//                     [--exit-after-requests N] [--wedge-after-requests N]
//
// Chaos hooks (both count *work* ops only — run_study/run_replication —
// so pings and introspection never consume the budget):
//   --exit-after-requests N   _Exit(9) *before answering* the Nth work
//                             request: a deterministic kill -9 mid-stream
//   --wedge-after-requests N  the Nth and every later work request blocks
//                             forever: alive for waitpid, dead to pings
//                             (run with --workers 1 so the wedge also
//                             starves the ping path)
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "cluster/backend.h"
#include "core/replication.h"
#include "service/server.h"

using namespace decompeval;
using service::Json;

namespace {

bool work_op(const Json& request) {
  const std::string op = request.is_object()
                             ? request.get_string("op", "")
                             : std::string();
  return op == "run_study" || op == "run_replication";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string cache_dir;
  std::string journal_path;
  std::string id = "backend";
  std::uint64_t max_bytes = 0;
  int workers = 2;
  std::uint64_t exit_after = 0;
  std::uint64_t wedge_after = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << id << ": missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket")
      socket_path = value();
    else if (arg == "--cache-dir")
      cache_dir = value();
    else if (arg == "--journal")
      journal_path = value();
    else if (arg == "--max-bytes")
      max_bytes = std::stoull(value());
    else if (arg == "--workers")
      workers = std::stoi(value());
    else if (arg == "--id")
      id = value();
    else if (arg == "--exit-after-requests")
      exit_after = std::stoull(value());
    else if (arg == "--wedge-after-requests")
      wedge_after = std::stoull(value());
    else {
      std::cerr << id << ": unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::cerr << "usage: cluster_backend --socket PATH [--cache-dir DIR]"
                 " [--journal PATH] [--max-bytes N] [--workers N] [--id NAME]"
                 " [--exit-after-requests N] [--wedge-after-requests N]\n";
    return 2;
  }

  cluster::ClusterBackendOptions backend_options;
  backend_options.cache.directory = cache_dir;
  backend_options.cache.version = core::version();
  backend_options.cache.max_bytes = max_bytes;
  backend_options.journal.path = journal_path;
  // The chaos hooks count handled requests, so nothing may answer off the
  // fast path: every request must reach the handler.
  backend_options.line_cache_capacity = 0;
  cluster::ClusterBackend backend(backend_options);

  auto inner = backend.handler();
  std::atomic<std::uint64_t> work_seen{0};

  service::ServerOptions options;
  options.socket_path = socket_path;
  options.workers = workers;
  options.handler = [&](const Json& request,
                        const std::atomic<bool>* cancel) -> Json {
    if (work_op(request)) {
      const std::uint64_t n = work_seen.fetch_add(1) + 1;
      // Dies before the handler (and its journal append) runs: the
      // caller sees a torn connection, exactly like kill -9 between
      // accept and reply.
      if (exit_after > 0 && n == exit_after) std::_Exit(9);
      if (wedge_after > 0 && n >= wedge_after)
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    return inner(request, cancel);
  };
  service::ReplicationServer server(options);
  server.start();
  while (server.running())
    ::usleep(20 * 1000);  // the "shutdown" op stops the server
  server.stop();
  return 0;
}
