// Metric playground: computes every intrinsic similarity metric for each
// study snippet's DIRTY↔original alignment, plus the simulated 12-coder
// human evaluation, and prints the per-snippet breakdown that feeds
// Tables III/IV. Useful for understanding *why* the metrics disagree with
// comprehension outcomes.
//
//   ./build/examples/metric_playground
#include <iostream>

#include "embed/embedding.h"
#include "metrics/human_eval.h"
#include "metrics/registry.h"
#include "snippets/snippet.h"
#include "util/strings.h"

int main() {
  using decompeval::util::format_fixed;
  const auto model = decompeval::embed::EmbeddingModel::train_default();
  std::cout << "Embedding model: " << model.vocabulary_size()
            << " tokens, dimension " << model.dimension() << "\n\n";

  for (const auto& snippet : decompeval::snippets::study_snippets()) {
    const auto scores =
        decompeval::metrics::compute_snippet_metrics(snippet.metric_inputs(),
                                                     model);
    decompeval::metrics::HumanEvalConfig cfg;
    const auto var_eval = decompeval::metrics::simulate_human_evaluation(
        snippet.variable_alignment, model, cfg);
    const auto type_eval = decompeval::metrics::simulate_human_evaluation(
        snippet.type_alignment, model, cfg);

    std::cout << snippet.id << " (" << snippet.function_name << ", "
              << snippet.project << ")\n";
    std::cout << "  aligned variables: " << snippet.variable_alignment.size()
              << ", aligned types: " << snippet.type_alignment.size() << "\n";
    std::cout << "  BLEU            " << format_fixed(scores.bleu, 4) << "\n";
    std::cout << "  codeBLEU        " << format_fixed(scores.code_bleu, 4)
              << "\n";
    std::cout << "  Jaccard         " << format_fixed(scores.jaccard, 4)
              << "\n";
    std::cout << "  Levenshtein     " << format_fixed(scores.levenshtein, 0)
              << " (normalized "
              << format_fixed(scores.normalized_levenshtein, 3) << ")\n";
    std::cout << "  BERTScore F1    " << format_fixed(scores.bertscore_f1, 4)
              << "\n";
    std::cout << "  VarCLR          " << format_fixed(scores.varclr, 4)
              << "\n";
    std::cout << "  Exact match     " << format_fixed(scores.exact_match, 4)
              << "\n";
    std::cout << "  Human (vars)    " << format_fixed(var_eval.mean_score, 3)
              << " (alpha " << format_fixed(var_eval.krippendorff_ordinal_alpha, 3)
              << ")\n";
    std::cout << "  Human (types)   " << format_fixed(type_eval.mean_score, 3)
              << "\n\n";
  }
  return 0;
}
