// Streaming study engine walkthrough.
//
//   ./streaming_demo [log_dir]
//
// Opens a bursty live-population stream on an in-process cluster
// backend, absorbs arrivals in waves while printing the windowed RQ
// dashboard after each wave, then simulates a crash: the backend is
// destroyed and a fresh one re-opens the same arrival log. The reloaded
// stream reports the same digest as the one that "crashed" — the
// streamed run replays bit-for-bit from its log.
//
// Everything is deterministic: run it twice and every line (digests,
// RQ numbers, window sizes) is byte-identical.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "cluster/backend.h"
#include "service/json.h"

using namespace decompeval;
using service::Json;

namespace {

Json open_request(const std::string& log_path) {
  Json req = Json::object();
  req.set("op", Json::string("stream_open"));
  req.set("stream", Json::string("live"));
  req.set("process", Json::string("bursty"));
  req.set("rate_per_s", Json::number(120.0));
  req.set("population", Json::number(24));
  req.set("window_events", Json::number(256));
  req.set("refit_every", Json::number(200));
  req.set("fit_starts", Json::number(2));
  req.set("log", Json::string(log_path));
  return req;
}

Json absorb_request(std::uint64_t count) {
  Json req = Json::object();
  req.set("op", Json::string("stream_absorb"));
  req.set("stream", Json::string("live"));
  req.set("count", Json::number(static_cast<double>(count)));
  return req;
}

Json stream_request(const char* op) {
  Json req = Json::object();
  req.set("op", Json::string(op));
  req.set("stream", Json::string("live"));
  return req;
}

void print_dashboard(const Json& dash) {
  std::cout << "  window=" << dash.get_number("window", 0)
            << " arrivals (virtual t="
            << dash.get_number("virtual_us", 0) / 1e6 << "s)\n";
  const Json* rq1 = dash.get("rq1");
  if (rq1 != nullptr) {
    const Json* hex = rq1->get("hexrays");
    const Json* dirty = rq1->get("dirty");
    if (hex != nullptr && dirty != nullptr)
      std::cout << "  rq1 correctness: hexrays="
                << hex->get_number("correct", 0) << "/"
                << hex->get_number("gradeable", 0) << "  dirty="
                << dirty->get_number("correct", 0) << "/"
                << dirty->get_number("gradeable", 0) << "\n";
    const Json* glmm = rq1->get("glmm");
    if (glmm != nullptr && glmm->get_bool("fitted", false))
      std::cout << "  rq1 glmm: treatment=" <<
          glmm->get_number("treatment_estimate", 0)
                << " p=" << glmm->get_number("treatment_p", 1) << " (warm="
                << (glmm->get_bool("warm", false) ? "yes" : "no") << ")\n";
  }
  const Json* rq2 = dash.get("rq2");
  if (rq2 != nullptr) {
    const Json* lmm = rq2->get("lmm");
    if (lmm != nullptr && lmm->get_bool("fitted", false))
      std::cout << "  rq2 lmm: treatment_seconds="
                << lmm->get_number("treatment_estimate", 0)
                << " p=" << lmm->get_number("treatment_p", 1) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string log_dir =
      argc > 1 ? argv[1]
               : "/tmp/decompeval-streaming-" + std::to_string(::getpid());
  std::filesystem::remove_all(log_dir);
  std::filesystem::create_directories(log_dir);
  const std::string log_path = log_dir + "/live.log";

  // --- first life: open, absorb in waves, watch the dashboard ------------
  cluster::ClusterBackendOptions options;
  options.stream_log_dir = log_dir;
  auto backend = std::make_unique<cluster::ClusterBackend>(options);

  Json opened = backend->handle(open_request(log_path), nullptr);
  std::cout << "opened stream 'live': " << opened.get_string("status", "?")
            << " (bursty arrivals, 256-event window, refit every 200)\n";

  for (int wave = 1; wave <= 3; ++wave) {
    const Json r = backend->handle(absorb_request(250), nullptr);
    std::cout << "\n--- wave " << wave << ": absorbed up to "
              << r.get_number("emitted", 0) << " arrivals (refits run: "
              << r.get_number("refits_run", 0) << ") ---\n";
    print_dashboard(backend->handle(stream_request("stream_dashboard"), nullptr));
  }

  const Json before = backend->handle(stream_request("stream_stats"), nullptr);
  const std::string digest_before = before.get_string("digest", "?");
  std::cout << "\nstate digest before crash: " << digest_before << "\n";

  // --- crash + re-open: the arrival log replays bit-for-bit --------------
  std::cout << "\n--- simulated crash: backend destroyed, fresh one "
               "re-opens the arrival log ---\n";
  backend.reset();
  backend = std::make_unique<cluster::ClusterBackend>(options);
  const Json reopened = backend->handle(open_request(log_path), nullptr);
  std::cout << "re-open: reloaded="
            << (reopened.get_bool("reloaded", false) ? "true" : "false")
            << " from " << log_path << "\n";

  const Json after = backend->handle(stream_request("stream_stats"), nullptr);
  const std::string digest_after = after.get_string("digest", "?");
  std::cout << "state digest after replay:  " << digest_after << "\n";
  std::cout << "replay bit-identical: "
            << (digest_after == digest_before ? "yes" : "NO — BUG") << "\n";

  // The reloaded stream keeps absorbing from where the log left off.
  const Json more = backend->handle(absorb_request(100), nullptr);
  std::cout << "\nabsorbed 100 more after replay: emitted="
            << more.get_number("emitted", 0)
            << " status=" << more.get_string("status", "?") << "\n";

  std::filesystem::remove_all(log_dir);
  return 0;
}
